// tunespace_client: scripted ask/tell session against a tunespace_serve.
//
//   tunespace_client [--host H] [--port P] [--kernel NAME]
//                    [--optimizer NAME] [--budget S] [--seed N]
//                    [--tenant NAME] [--objectives SPEC]
//                    [--warm-start] [--surrogate]
//                    [--min-cache-hits N] [--min-seeded-rows N] [--drain]
//
// Opens one session, answers every suggestion with the kernel's local
// performance model (the client links the library, so it owns the same
// deterministic surface the in-process tuner uses), and closes the session
// printing the run summary.  --objectives takes a comma-separated list of
// name:direction:weight triples (direction/weight optional), e.g.
// "gflops:maximize:1,watts:minimize:0.01"; the session then tunes the full
// objective vector over the v2 wire and the client reports complete
// measurements and prints the Pareto front size plus perf-per-watt of the
// incumbent.  --drain then asks the server to drain and waits until it
// quiesces — the graceful-shutdown path the CI smoke job exercises.
// --min-cache-hits fails the run unless the service served at least that
// many shared-cache hits, which is how the smoke job proves a warm restart
// actually reused the persisted eval cache.  --warm-start opens the session
// with cache-seeded transfer (OpenSessionRequest::warm_start) and
// --min-seeded-rows fails unless the session was seeded with at least that
// many cached rows; --surrogate forces the model-based optimizer.  Every run
// prints a greppable "model_evaluations=N seeded_rows=N" line so a smoke
// script can assert that a warm session re-measured fewer configurations
// than a cold one.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "tunespace/tuner/service.hpp"
#include "tunespace/tuner/service_client.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--kernel NAME] "
               "[--optimizer NAME] [--budget S] [--seed N] [--tenant NAME] "
               "[--objectives name:dir:weight,...] [--warm-start] "
               "[--surrogate] [--min-cache-hits N] [--min-seeded-rows N] "
               "[--drain]\n",
               argv0);
  std::exit(2);
}

/// "gflops:maximize:1,watts:minimize:0.01" -> ObjectiveSpec.  Direction and
/// weight are optional per objective (defaults: maximize, 1.0).
tunespace::tuner::ObjectiveSpec parse_objectives(const std::string& text,
                                                 const char* argv0) {
  using tunespace::tuner::Direction;
  using tunespace::tuner::Objective;
  tunespace::tuner::ObjectiveSpec spec;
  spec.objectives.clear();
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string part = text.substr(start, comma - start);
    start = comma + 1;
    if (part.empty()) continue;
    Objective objective;
    const std::size_t c1 = part.find(':');
    objective.name = part.substr(0, c1);
    if (c1 != std::string::npos) {
      const std::size_t c2 = part.find(':', c1 + 1);
      const std::string dir = part.substr(c1 + 1, c2 - c1 - 1);
      if (dir == "minimize" || dir == "min") {
        objective.direction = Direction::kMinimize;
      } else if (dir == "maximize" || dir == "max" || dir.empty()) {
        objective.direction = Direction::kMaximize;
      } else {
        std::fprintf(stderr, "%s: bad objective direction '%s'\n", argv0,
                     dir.c_str());
        std::exit(2);
      }
      if (c2 != std::string::npos) {
        objective.weight = std::atof(part.c_str() + c2 + 1);
      }
    }
    spec.objectives.push_back(std::move(objective));
  }
  if (spec.objectives.empty()) {
    std::fprintf(stderr, "%s: --objectives needs at least one objective\n",
                 argv0);
    std::exit(2);
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tunespace::tuner;

  ServiceClientOptions client_options;
  client_options.port = 7971;
  OpenSessionRequest open_request;
  open_request.kernel = "gemm";
  open_request.budget_seconds = 3.0;
  open_request.fixed_construction_seconds = 0.5;
  bool drain = false;
  long long min_cache_hits = -1;
  long long min_seeded_rows = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--host") {
      client_options.host = next();
    } else if (arg == "--port") {
      client_options.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--kernel") {
      open_request.kernel = next();
    } else if (arg == "--optimizer") {
      open_request.optimizer = next();
    } else if (arg == "--budget") {
      open_request.budget_seconds = std::atof(next());
    } else if (arg == "--seed") {
      open_request.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--tenant") {
      open_request.tenant = next();
    } else if (arg == "--objectives") {
      open_request.objectives = parse_objectives(next(), argv[0]);
    } else if (arg == "--warm-start") {
      open_request.warm_start = true;
    } else if (arg == "--surrogate") {
      open_request.surrogate = true;
    } else if (arg == "--min-cache-hits") {
      min_cache_hits = std::atoll(next());
    } else if (arg == "--min-seeded-rows") {
      min_seeded_rows = std::atoll(next());
    } else if (arg == "--drain") {
      drain = true;
    } else {
      usage(argv[0]);
    }
  }

  try {
    const ServiceKernel* kernel = find_service_kernel(open_request.kernel);
    if (kernel == nullptr) {
      std::fprintf(stderr, "tunespace_client: unknown kernel '%s'\n",
                   open_request.kernel.c_str());
      return 1;
    }

    ServiceClient client(client_options);
    if (!client.ping()) {
      std::fprintf(stderr, "tunespace_client: server did not answer ping\n");
      return 1;
    }
    std::printf("connected (protocol v%d)\n", client.negotiated_version());

    const bool multi_objective = !open_request.objectives.is_single();
    const auto opened = client.open(open_request);
    std::printf("opened session %llu over %s (%llu rows, optimizer %s, "
                "%zu objectives)\n",
                static_cast<unsigned long long>(opened.session_id),
                opened.info.kernel.c_str(),
                static_cast<unsigned long long>(opened.info.space_rows),
                opened.info.optimizer.c_str(), opened.info.objectives.size());
    if (opened.info.seeded_rows > 0) {
      std::printf("warm start seeded %llu cached rows\n",
                  static_cast<unsigned long long>(opened.info.seeded_rows));
    }
    if (min_seeded_rows >= 0 &&
        opened.info.seeded_rows < static_cast<std::uint64_t>(min_seeded_rows)) {
      std::fprintf(stderr,
                   "tunespace_client: expected >= %lld seeded rows, saw %llu "
                   "— warm start did not take\n",
                   min_seeded_rows,
                   static_cast<unsigned long long>(opened.info.seeded_rows));
      return 1;
    }

    // The ask/tell loop: measure every suggestion with the local model.
    const std::vector<std::string>& names = opened.info.param_names;
    std::uint64_t measured = 0;
    while (true) {
      const auto suggestion = client.suggest(opened.session_id);
      if (suggestion.finished) break;
      tunespace::csp::Config config;
      config.reserve(suggestion.config.size());
      for (const auto& entry : suggestion.config) config.push_back(entry.value);
      ReportRequest report;
      report.session_id = opened.session_id;
      if (multi_objective) {
        report.measurement = kernel->model->measure(names, config);
        report.gflops = report.measurement.gflops;
      } else {
        report.gflops = kernel->model->gflops(names, config);
      }
      client.report(report);
      measured++;
    }

    // Greppable transfer line: the smoke job compares this count between a
    // cold and a warm run of the same session.
    const auto final_info = client.info(opened.session_id);
    std::printf("model_evaluations=%llu seeded_rows=%llu\n",
                static_cast<unsigned long long>(final_info.model_evaluations),
                static_cast<unsigned long long>(final_info.seeded_rows));

    const auto closed = client.close_session(opened.session_id);
    std::printf("session %llu finished: best %.3f GFLOP/s, %llu evaluations "
                "(%llu reported by this client), %zu trajectory points\n",
                static_cast<unsigned long long>(closed.session_id),
                closed.run.best_gflops,
                static_cast<unsigned long long>(closed.run.evaluations),
                static_cast<unsigned long long>(measured),
                closed.run.trajectory.size());
    if (multi_objective) {
      const double watts = closed.run.best.watts;
      std::printf("multi-objective: score %.6f, Pareto front %zu points, "
                  "incumbent %.3f GFLOP/s at %.1f W (%.4f GFLOP/s/W)\n",
                  closed.run.best_score, closed.run.front.size(),
                  closed.run.best.gflops, watts,
                  watts > 0 ? closed.run.best.gflops / watts : 0.0);
      if (closed.run.front.empty()) {
        std::fprintf(stderr, "tunespace_client: empty Pareto front\n");
        return 1;
      }
    }

    if (min_cache_hits >= 0) {
      const auto stats = client.stats();
      std::printf("service cache: %llu entries, %llu hits\n",
                  static_cast<unsigned long long>(stats.cache_entries),
                  static_cast<unsigned long long>(stats.cache_hits));
      if (stats.cache_hits < static_cast<std::uint64_t>(min_cache_hits)) {
        std::fprintf(stderr,
                     "tunespace_client: expected >= %lld shared-cache hits, "
                     "saw %llu — warm start did not take\n",
                     min_cache_hits,
                     static_cast<unsigned long long>(stats.cache_hits));
        return 1;
      }
    }

    if (drain) {
      const auto drained = client.drain({true, 30.0});
      std::printf("drain: draining=%d drained=%d live=%llu\n",
                  drained.draining ? 1 : 0, drained.drained ? 1 : 0,
                  static_cast<unsigned long long>(drained.live_sessions));
      if (!drained.drained) {
        std::fprintf(stderr, "tunespace_client: drain did not complete\n");
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tunespace_client: %s\n", e.what());
    return 1;
  }
}
