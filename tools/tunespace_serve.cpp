// tunespace_serve: host a TuningService over TCP.
//
//   tunespace_serve [--host H] [--port P] [--http-port P] [--workers N]
//                   [--state-dir DIR] [--max-sessions N] [--max-per-tenant N]
//                   [--max-evals N] [--exit-when-drained]
//
// Prints one "listening on H:P" line once the socket is bound (scripts and
// the CI smoke job key on it; with --http-port a second "http listening"
// line follows), then serves until SIGINT/SIGTERM or — with
// --exit-when-drained — until a client completes a drain.  With a state
// directory, space snapshots and the shared eval cache persist across
// restarts, so a relaunched server warm-starts.  --http-port serves the
// HTTP/1.1 gateway (POST /v1/{op}, JSON body) next to the frame port, so
// curl can drive every op; --workers caps the service-call thread pool of
// the epoll event loop.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tunespace/tuner/server.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--http-port P] [--workers N] "
               "[--state-dir DIR] [--max-sessions N] [--max-per-tenant N] "
               "[--max-evals N] [--exit-when-drained]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tunespace::tuner;

  TuningServiceOptions service_options;
  ServiceServerOptions server_options;
  server_options.port = 7971;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--host") {
      server_options.host = next();
    } else if (arg == "--port") {
      server_options.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--http-port") {
      server_options.enable_http = true;
      server_options.http_port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--workers") {
      server_options.workers = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--state-dir") {
      service_options.state_dir = next();
    } else if (arg == "--max-sessions") {
      service_options.limits.max_live_sessions =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-per-tenant") {
      service_options.limits.max_sessions_per_tenant =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-evals") {
      service_options.limits.max_evaluations_per_session =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--exit-when-drained") {
      server_options.exit_when_drained = true;
    } else {
      usage(argv[0]);
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  try {
    TuningService service(service_options);
    ServiceServer server(service, server_options);
    server.start();
    std::printf("tunespace_serve listening on %s:%u\n",
                server_options.host.c_str(), server.port());
    if (server_options.enable_http) {
      std::printf("tunespace_serve http listening on %s:%u\n",
                  server_options.host.c_str(), server.http_port());
    }
    std::fflush(stdout);

    while (!g_stop.load()) {
      if (server.wait_for(0.1)) break;
    }
    server.stop();
    service.begin_drain();  // reject stragglers while state is saved
    service.save_state();
    const auto stats = service.stats();
    std::printf("tunespace_serve exiting: %llu opened, %llu closed, "
                "%llu cache entries\n",
                static_cast<unsigned long long>(stats.total_opened),
                static_cast<unsigned long long>(stats.total_closed),
                static_cast<unsigned long long>(stats.cache_entries));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tunespace_serve: %s\n", e.what());
    return 1;
  }
}
