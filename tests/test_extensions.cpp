// Tests for the extension features: ternary conditional expressions, native
// lambda constraints (KTT-style API), the lazy solution iterator, the
// parallel solver, differential evolution, and CSV serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "tunespace/csp/builtin_constraints.hpp"
#include "tunespace/csp/lambda_constraint.hpp"
#include "tunespace/expr/compiler.hpp"
#include "tunespace/expr/interpreter.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/expr/recognizer.hpp"
#include "tunespace/searchspace/io.hpp"
#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/solver/parallel_backtracking.hpp"
#include "tunespace/solver/solution_iterator.hpp"
#include "tunespace/spaces/realworld.hpp"
#include "tunespace/tuner/runner.hpp"
#include "tunespace/tuner/session.hpp"

using namespace tunespace;
using csp::Value;

// --- Ternary conditional expressions -----------------------------------------

namespace {
Value ev(const std::string& src,
         const std::unordered_map<std::string, Value>& vars = {}) {
  return expr::eval(*expr::parse(src), expr::map_env(vars));
}
}  // namespace

TEST(Ternary, InterpreterSemantics) {
  EXPECT_EQ(ev("1 if True else 2"), Value(1));
  EXPECT_EQ(ev("1 if False else 2"), Value(2));
  EXPECT_EQ(ev("10 if 3 > 2 else 20"), Value(10));
}

TEST(Ternary, OnlyTakenBranchEvaluates) {
  EXPECT_EQ(ev("1 if True else 1 / 0"), Value(1));
  EXPECT_EQ(ev("1 / 0 if False else 2"), Value(2));
}

TEST(Ternary, LowestPrecedenceAndRightAssociativity) {
  // a or b if c else d parses as (a or b) if c else d
  EXPECT_EQ(ev("0 or 5 if False else 7"), Value(7));
  // nested: x if a else y if b else z == x if a else (y if b else z)
  EXPECT_EQ(ev("1 if False else 2 if False else 3"), Value(3));
}

TEST(Ternary, RoundTrip) {
  const auto a = expr::parse("x * 2 if x > 4 else x + 1");
  const auto b = expr::parse(a->to_string());
  EXPECT_TRUE(a->equals(*b));
}

TEST(Ternary, CompiledMatchesInterpreter) {
  const auto ast = expr::parse("a * 2 if a > b else b - a");
  const expr::Program prog = expr::compile(ast);
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      std::unordered_map<std::string, Value> vars{{"a", Value(a)}, {"b", Value(b)}};
      const Value expected = expr::eval(*ast, expr::map_env(vars));
      std::vector<Value> values;
      std::vector<std::uint32_t> slots;
      for (const auto& name : prog.var_names()) {
        slots.push_back(static_cast<std::uint32_t>(values.size()));
        values.push_back(vars.at(name));
      }
      EXPECT_EQ(expected, prog.run(values.data(), slots.data()));
    }
  }
}

TEST(Ternary, WorksInConstraintPipeline) {
  // Real-world style: the halo only matters when temporal tiling is on.
  tuner::TuningProblem spec("ternary");
  spec.add_param("ttf", {1, 2, 4}).add_param("bsx", {8, 16, 32});
  spec.add_constraint("(bsx - 2 * ttf if ttf > 1 else bsx) >= 8");
  auto methods = tuner::construction_methods(false);
  auto a = tuner::construct(spec, methods[0]);
  auto b = tuner::construct(spec, methods[3]);  // brute force
  EXPECT_TRUE(a.solutions.same_solutions(b.solutions));
  EXPECT_GT(a.solutions.size(), 0u);
  EXPECT_LT(a.solutions.size(), 9u);
}

// --- Lambda constraints -------------------------------------------------------

TEST(LambdaConstraints, KttStyleApi) {
  tuner::TuningProblem spec("ktt");
  spec.add_param("block_size_x", {16, 32, 64}).add_param("block_size_y", {1, 2, 4, 8});
  // KTT Listing-2 style: native lambdas on a named parameter group.
  spec.add_constraint({"block_size_x", "block_size_y"},
                      [](std::span<const Value> v) {
                        return v[0].as_int() * v[1].as_int() >= 32;
                      },
                      "minWG");
  spec.add_constraint({"block_size_x", "block_size_y"},
                      [](std::span<const Value> v) {
                        return v[0].as_int() * v[1].as_int() <= 128;
                      },
                      "maxWG");
  auto methods = tuner::construction_methods(false);
  auto result = tuner::construct(spec, methods[0]);
  std::size_t expected = 0;
  for (int x : {16, 32, 64}) {
    for (int y : {1, 2, 4, 8}) {
      if (x * y >= 32 && x * y <= 128) ++expected;
    }
  }
  EXPECT_EQ(result.solutions.size(), expected);
}

TEST(LambdaConstraints, MixWithStringConstraints) {
  tuner::TuningProblem spec("mixed");
  spec.add_param("a", {1, 2, 3, 4}).add_param("b", {1, 2, 3, 4});
  spec.add_constraint("a <= b");
  spec.add_constraint({"a", "b"}, [](std::span<const Value> v) {
    return (v[0].as_int() + v[1].as_int()) % 2 == 0;
  });
  auto methods = tuner::construction_methods(false);
  auto a = tuner::construct(spec, methods[0]);
  auto brute = tuner::construct(spec, methods[3]);
  EXPECT_TRUE(a.solutions.same_solutions(brute.solutions));
  for (std::size_t r = 0; r < a.solutions.size(); ++r) {
    auto problem = tuner::build_problem(spec, tuner::PipelineOptions::optimized());
    const auto config = a.solutions.config(r, problem);
    EXPECT_LE(config[0].as_int(), config[1].as_int());
    EXPECT_EQ((config[0].as_int() + config[1].as_int()) % 2, 0);
  }
}

TEST(LambdaConstraints, ThrowingPredicateInvalidates) {
  csp::LambdaConstraint c({"x"}, [](std::span<const Value>) -> bool {
    throw std::runtime_error("boom");
  });
  c.bind({0});
  Value v[] = {Value(1)};
  EXPECT_FALSE(c.satisfied(v));
}

// --- SolutionIterator ---------------------------------------------------------

TEST(SolutionIteratorTest, StreamsAllSolutionsInSolverOrder) {
  auto rw = spaces::dedispersion();
  auto problem = tuner::build_problem(rw.spec, tuner::PipelineOptions::optimized());
  auto reference = solver::OptimizedBacktracking{}.solve(problem);

  auto problem2 = tuner::build_problem(rw.spec, tuner::PipelineOptions::optimized());
  solver::SolutionIterator it(problem2);
  std::size_t i = 0;
  while (auto row = it.next()) {
    ASSERT_LT(i, reference.solutions.size());
    EXPECT_EQ(*row, reference.solutions.index_row(i));
    ++i;
  }
  EXPECT_EQ(i, reference.solutions.size());
  EXPECT_EQ(it.count(), reference.solutions.size());
  EXPECT_FALSE(it.next().has_value());  // stays exhausted
}

TEST(SolutionIteratorTest, EarlyExitExistenceCheck) {
  auto rw = spaces::atf_prl(4);
  auto problem = tuner::build_problem(rw.spec, tuner::PipelineOptions::optimized());
  solver::SolutionIterator it(problem);
  auto first = it.next_config();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(problem.config_valid(*first));
  EXPECT_EQ(it.count(), 1u);
}

TEST(SolutionIteratorTest, UnsatisfiableYieldsNothing) {
  csp::Problem problem;
  problem.add_variable("x", csp::Domain::range(1, 3));
  problem.add_constraint(std::make_unique<csp::MinSum>(
      100, std::vector<std::string>{"x"}));
  solver::SolutionIterator it(problem);
  EXPECT_FALSE(it.next().has_value());
}

// --- ParallelBacktracking -----------------------------------------------------

class ParallelSolver : public ::testing::TestWithParam<int> {};

TEST_P(ParallelSolver, MatchesSequentialExactlyIncludingOrder) {
  const std::size_t threads = static_cast<std::size_t>(GetParam());
  for (const auto& rw : {spaces::dedispersion(), spaces::gemm(), spaces::atf_prl(2)}) {
    auto p1 = tuner::build_problem(rw.spec, tuner::PipelineOptions::optimized());
    auto sequential = solver::OptimizedBacktracking{}.solve(p1);
    auto p2 = tuner::build_problem(rw.spec, tuner::PipelineOptions::optimized());
    auto parallel = solver::ParallelBacktracking(threads).solve(p2);
    ASSERT_EQ(parallel.solutions.size(), sequential.solutions.size()) << rw.name;
    // Chunk-ordered concatenation preserves the sequential enumeration order.
    for (std::size_t r = 0; r < parallel.solutions.size(); r += 97) {
      EXPECT_EQ(parallel.solutions.index_row(r), sequential.solutions.index_row(r))
          << rw.name << " row " << r;
    }
    EXPECT_EQ(parallel.stats.nodes, sequential.stats.nodes) << rw.name;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelSolver, ::testing::Values(1, 2, 4, 8));

TEST(ParallelSolverEdge, MoreThreadsThanFirstDomain) {
  csp::Problem p;
  p.add_variable("x", csp::Domain::range(1, 2));
  p.add_variable("y", csp::Domain::range(1, 100));
  auto result = solver::ParallelBacktracking(16).solve(p);
  EXPECT_EQ(result.solutions.size(), 200u);
}

TEST(ParallelSolverEdge, EmptyAndUnsatisfiable) {
  csp::Problem p;
  p.add_variable("x", csp::Domain::range(1, 4));
  p.add_constraint(std::make_unique<csp::MinSum>(100, std::vector<std::string>{"x"}));
  EXPECT_EQ(solver::ParallelBacktracking(4).solve(p).solutions.size(), 0u);
}

// --- DifferentialEvolution ------------------------------------------------------

TEST(DifferentialEvolutionTest, FindsGoodConfigurationsAndTerminates) {
  tuner::TuningProblem spec("de");
  spec.add_param("block_size_x", {8, 16, 32, 64, 128})
      .add_param("block_size_y", {1, 2, 4, 8})
      .add_param("sh_power", {0, 1});
  spec.add_constraint("32 <= block_size_x * block_size_y <= 512");
  tuner::DifferentialEvolution de;
  tuner::HotspotModel model;
  tuner::TuningOptions options;
  options.budget_seconds = 150.0;
  options.seed = 13;
  auto methods = tuner::construction_methods(false);
  auto run = tuner::run_session(
      tuner::make_session_request(spec, methods[0], model, de, options));
  EXPECT_GT(run.evaluations, 10u);
  EXPECT_GT(run.best_gflops, 0.0);
}

// --- CSV serialization ----------------------------------------------------------

TEST(CsvIo, RoundTripsValuesAndValidates) {
  tuner::TuningProblem spec("csv");
  spec.add_param("x", {1, 2, 4})
      .add_param("layout", std::vector<Value>{Value("NHWC"), Value("NCHW")})
      .add_param("alpha", std::vector<Value>{Value(0.5), Value(1.0)});
  spec.add_constraint("x <= 2 or layout == 'NHWC'");
  searchspace::SearchSpace space(spec);

  std::stringstream ss;
  searchspace::write_csv(space, ss);
  const auto rows = searchspace::read_csv(spec, ss);
  ASSERT_EQ(rows.size(), space.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(rows[r], space.config(r));
  }
}

TEST(CsvIo, RejectsHeaderMismatch) {
  tuner::TuningProblem spec("csv");
  spec.add_param("x", {1, 2});
  std::stringstream ss("y\n1\n");
  EXPECT_THROW(searchspace::read_csv(spec, ss), std::runtime_error);
}

TEST(CsvIo, RejectsOutOfDomainValues) {
  tuner::TuningProblem spec("csv");
  spec.add_param("x", {1, 2});
  std::stringstream ss("x\n3\n");
  EXPECT_THROW(searchspace::read_csv(spec, ss), std::runtime_error);
}
