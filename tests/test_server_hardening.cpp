// Hardening tests for the wire front end: errno classification in the net
// layer (transient accept/connect failures), protocol abuse against a live
// epoll server (oversized length prefixes, truncated frames, cross-protocol
// garbage), fd-exhaustion recovery (EMFILE injection via RLIMIT_NOFILE),
// close-event connection reclamation, and the HTTP/1.1 gateway (parser
// unit tests plus a full scripted session over POST /v1/{op} checked
// bit-identical against the in-process replay).
#include <gtest/gtest.h>

#include <cerrno>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "tunespace/tuner/net.hpp"
#include "tunespace/tuner/protocol.hpp"
#include "tunespace/tuner/server.hpp"
#include "tunespace/tuner/service.hpp"
#include "tunespace/tuner/service_client.hpp"
#include "tunespace/util/json.hpp"

using namespace tunespace;
namespace json = util::json;
namespace wire = tuner::wire;
namespace net = tuner::net;

namespace {

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Wait (bounded) for a predicate the event loop satisfies asynchronously.
template <typename Pred>
bool eventually(Pred pred, int timeout_ms = 5000) {
  for (int waited = 0; waited < timeout_ms; waited += 10) {
    if (pred()) return true;
    sleep_ms(10);
  }
  return pred();
}

/// Blocking connect with a 5 s receive timeout so an unresponsive server
/// fails a test instead of hanging it.
int raw_connect(std::uint16_t port) {
  const int fd = net::connect_tcp("127.0.0.1", port, 5.0);
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  return fd;
}

void send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t sent =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(sent, 0);
    off += static_cast<std::size_t>(sent);
  }
}

/// True when the peer closes without sending anything more.
bool peer_closes(int fd) {
  char byte = 0;
  const ssize_t r = ::recv(fd, &byte, 1, 0);
  return r == 0;
}

/// Read one HTTP response (status line + headers + Content-Length body).
bool read_http_response(int fd, int& status, std::string& body) {
  std::string buf;
  char tmp[4096];
  std::size_t header_end = std::string::npos;
  while ((header_end = buf.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t r = ::recv(fd, tmp, sizeof tmp, 0);
    if (r <= 0) return false;
    buf.append(tmp, static_cast<std::size_t>(r));
  }
  if (buf.rfind("HTTP/1.1 ", 0) != 0) return false;
  status = std::atoi(buf.c_str() + 9);
  std::size_t content_length = 0;
  const std::size_t cl = buf.find("Content-Length: ");
  if (cl != std::string::npos && cl < header_end) {
    content_length =
        static_cast<std::size_t>(std::atoll(buf.c_str() + cl + 16));
  }
  while (buf.size() < header_end + 4 + content_length) {
    const ssize_t r = ::recv(fd, tmp, sizeof tmp, 0);
    if (r <= 0) return false;
    buf.append(tmp, static_cast<std::size_t>(r));
  }
  body = buf.substr(header_end + 4, content_length);
  return true;
}

/// One POST /v1/{op} round trip on an open gateway connection.
bool http_post(int fd, const std::string& op, const std::string& body_json,
               int& status, json::Value& reply) {
  const std::string request = "POST /v1/" + op +
                              " HTTP/1.1\r\n"
                              "Host: 127.0.0.1\r\n"
                              "Content-Type: application/json\r\n"
                              "Content-Length: " +
                              std::to_string(body_json.size()) + "\r\n\r\n" +
                              body_json;
  send_all(fd, request);
  std::string body;
  if (!read_http_response(fd, status, body)) return false;
  reply = json::Value::parse(body);
  return true;
}

tuner::OpenSessionRequest scripted_gemm() {
  tuner::OpenSessionRequest request;
  request.kernel = "gemm";
  request.seed = 5;
  request.budget_seconds = 2.0;
  request.fixed_construction_seconds = 0.5;
  return request;
}

struct LiveServer {
  tuner::TuningService service;
  tuner::ServiceServer server;

  explicit LiveServer(tuner::ServiceServerOptions options = {})
      : server(service, [&options] {
          options.port = 0;
          return options;
        }()) {
    server.start();
  }
  ~LiveServer() { server.stop(); }
};

}  // namespace

// --- errno classification ---------------------------------------------------

TEST(ErrnoClassification, TransientAcceptErrnosAreRetried) {
  for (const int err :
       {EMFILE, ENFILE, ENOBUFS, ENOMEM, ECONNABORTED, EINTR, EAGAIN}) {
    EXPECT_TRUE(net::transient_accept_errno(err)) << std::strerror(err);
  }
  for (const int err : {EBADF, EINVAL, ENOTSOCK, EOPNOTSUPP, EFAULT}) {
    EXPECT_FALSE(net::transient_accept_errno(err)) << std::strerror(err);
  }
}

TEST(ErrnoClassification, OnlyCurableConnectErrnosAreRetried) {
  for (const int err : {ECONNREFUSED, EAGAIN, ETIMEDOUT, EINTR}) {
    EXPECT_TRUE(net::transient_connect_errno(err)) << std::strerror(err);
  }
  // Routing and permission failures must fail immediately: retrying them
  // for the whole connect timeout only hides a misconfiguration.
  for (const int err :
       {ENETUNREACH, EHOSTUNREACH, EACCES, EPERM, EADDRNOTAVAIL, EINVAL}) {
    EXPECT_FALSE(net::transient_connect_errno(err)) << std::strerror(err);
  }
}

TEST(ErrnoClassification, ZeroConnectTimeoutMeansOneAttempt) {
  // A port that was just listening and is now closed refuses connections;
  // with a zero timeout the refusal must surface on the first attempt
  // instead of entering the 50 ms retry loop.
  const int listener = net::listen_tcp("127.0.0.1", 0);
  const std::uint16_t dead_port = net::local_port(listener);
  net::close_fd(listener);

  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(net::connect_tcp("127.0.0.1", dead_port, 0.0), ServiceError);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 1.0);
}

// --- connection reclamation -------------------------------------------------

TEST(Hardening, DepartedConnectionsAreReclaimedWithoutANewAccept) {
  LiveServer live;
  tuner::ServiceClientOptions options;
  options.port = live.server.port();
  {
    tuner::ServiceClient client(options);
    ASSERT_TRUE(client.ping());
    ASSERT_TRUE(eventually(
        [&] { return live.server.active_connections() == 1; }));
  }  // client disconnects; no further connection arrives
  // The old thread-per-connection server leaked this connection until the
  // next accept; the event loop must reclaim it from the close event alone.
  EXPECT_TRUE(eventually(
      [&] { return live.server.active_connections() == 0; }));
}

// --- protocol abuse on the frame port ---------------------------------------

TEST(Hardening, OversizedLengthPrefixDropsTheConnectionNotTheServer) {
  LiveServer live;
  const int fd = raw_connect(live.server.port());
  send_all(fd, std::string_view("\xff\xff\xff\xff", 4));
  EXPECT_TRUE(peer_closes(fd));
  net::close_fd(fd);

  tuner::ServiceClientOptions options;
  options.port = live.server.port();
  tuner::ServiceClient client(options);
  EXPECT_TRUE(client.ping());
}

TEST(Hardening, TruncatedFrameThenReconnectResumesService) {
  LiveServer live;
  const int fd = raw_connect(live.server.port());
  // Announce 100 bytes, deliver 10, vanish.
  send_all(fd, std::string_view("\x00\x00\x00\x64", 4));
  send_all(fd, "0123456789");
  net::close_fd(fd);

  tuner::ServiceClientOptions options;
  options.port = live.server.port();
  tuner::ServiceClient client(options);
  EXPECT_TRUE(client.ping());
  EXPECT_TRUE(eventually(
      [&] { return live.server.active_connections() == 1; }));
}

TEST(Hardening, HttpBytesOnTheFramePortAreRejected) {
  LiveServer live;
  const int fd = raw_connect(live.server.port());
  // "GET " reads as a 1.2 GB length prefix — the desync guard must close
  // the connection rather than wait for a gigabyte that never comes.
  send_all(fd, "GET / HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
  EXPECT_TRUE(peer_closes(fd));
  net::close_fd(fd);

  tuner::ServiceClientOptions options;
  options.port = live.server.port();
  tuner::ServiceClient client(options);
  EXPECT_TRUE(client.ping());
}

// --- protocol abuse on the HTTP port ----------------------------------------

TEST(Hardening, FrameBytesOnTheHttpPortDoNotWedgeTheServer) {
  tuner::ServiceServerOptions options;
  options.enable_http = true;
  LiveServer live(options);

  // A length-prefixed frame never contains CRLFCRLF; the parser waits for
  // more, the peer gives up, and the close event reclaims the connection.
  const int fd = raw_connect(live.server.http_port());
  send_all(fd, std::string_view("\x00\x00\x00\x10{\"op\":\"ping\"}xx", 20));
  net::close_fd(fd);
  EXPECT_TRUE(eventually(
      [&] { return live.server.active_connections() == 0; }));

  // Binary noise past the header cap is rejected with 431, not buffered
  // forever.
  const int noisy = raw_connect(live.server.http_port());
  send_all(noisy, std::string(70 * 1024, 'x'));
  int status = 0;
  std::string body;
  ASSERT_TRUE(read_http_response(noisy, status, body));
  EXPECT_EQ(status, 431);
  EXPECT_TRUE(peer_closes(noisy));
  net::close_fd(noisy);

  // A malformed request line gets a 400.
  const int malformed = raw_connect(live.server.http_port());
  send_all(malformed, "BOGUS\r\n\r\n");
  ASSERT_TRUE(read_http_response(malformed, status, body));
  EXPECT_EQ(status, 400);
  net::close_fd(malformed);

  // And the gateway still answers a well-formed request.
  const int good = raw_connect(live.server.http_port());
  json::Value reply;
  ASSERT_TRUE(http_post(good, "ping", "{}", status, reply));
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(reply.at("pong").as_bool());
  net::close_fd(good);
}

// --- fd exhaustion ----------------------------------------------------------

TEST(Hardening, AcceptLoopSurvivesFdExhaustion) {
  LiveServer live;
  tuner::ServiceClientOptions options;
  options.port = live.server.port();
  {
    tuner::ServiceClient client(options);
    ASSERT_TRUE(client.ping());
  }

  // Drop RLIMIT_NOFILE to just above what the process already uses, then
  // pile up connections until socket()/accept() hit EMFILE.  The server
  // side of this pressure is exactly the condition that permanently killed
  // the old accept loop.
  rlimit original{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &original), 0);
  std::size_t used = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++used;
  }
  rlimit low = original;
  low.rlim_cur = static_cast<rlim_t>(used + 6);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &low), 0);

  std::vector<int> held;
  for (int i = 0; i < 32; ++i) {
    try {
      held.push_back(net::connect_tcp("127.0.0.1", live.server.port(), 0.0));
    } catch (const ServiceError&) {
      break;  // the fd table is full — exactly the pressure we want
    }
  }
  sleep_ms(300);  // let the event loop take the EMFILE hits and back off

  for (const int fd : held) net::close_fd(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &original), 0);

  // The pressure has cleared: the server must accept and answer again.
  tuner::ServiceClient client(options);
  EXPECT_TRUE(client.ping());
}

// --- worker pool ------------------------------------------------------------

TEST(Hardening, SequentialChurnAgainstASingleWorker) {
  tuner::ServiceServerOptions options;
  options.workers = 1;
  LiveServer live(options);
  tuner::ServiceClientOptions client_options;
  client_options.port = live.server.port();
  for (int i = 0; i < 50; ++i) {
    tuner::ServiceClient client(client_options);
    ASSERT_TRUE(client.ping()) << "connect #" << i;
  }
  EXPECT_TRUE(eventually(
      [&] { return live.server.active_connections() == 0; }));
}

// --- HTTP parser ------------------------------------------------------------

TEST(HttpCodec, ParsesIncrementallyAndExactly) {
  const std::string request =
      "POST /v1/suggest HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n"
      "{\"a\":1}xx";
  wire::HttpRequest parsed;
  std::size_t consumed = 0;
  int status = 0;
  std::string error;
  // Every proper prefix must come back kNeedMore without consuming bytes.
  for (std::size_t n = 0; n + 2 < request.size(); ++n) {
    const auto verdict = wire::parse_http_request(
        std::string_view(request).substr(0, n), parsed, consumed, status, error);
    ASSERT_EQ(verdict, wire::HttpParse::kNeedMore) << "prefix " << n;
  }
  const auto verdict =
      wire::parse_http_request(request, parsed, consumed, status, error);
  ASSERT_EQ(verdict, wire::HttpParse::kOk);
  EXPECT_EQ(parsed.method, "POST");
  EXPECT_EQ(parsed.target, "/v1/suggest");
  EXPECT_EQ(parsed.body, "{\"a\":1}");
  EXPECT_TRUE(parsed.keep_alive);
  EXPECT_EQ(consumed, request.size() - 2);  // the trailing "xx" is pipelined
}

TEST(HttpCodec, RejectsChunkedOversizedAndMalformed) {
  wire::HttpRequest parsed;
  std::size_t consumed = 0;
  int status = 0;
  std::string error;

  EXPECT_EQ(wire::parse_http_request(
                "POST /v1/ping HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                parsed, consumed, status, error),
            wire::HttpParse::kBad);
  EXPECT_EQ(status, 501);

  EXPECT_EQ(wire::parse_http_request(
                "POST /v1/ping HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n",
                parsed, consumed, status, error),
            wire::HttpParse::kBad);
  EXPECT_EQ(status, 413);

  EXPECT_EQ(wire::parse_http_request("not http at all\r\n\r\n", parsed,
                                     consumed, status, error),
            wire::HttpParse::kBad);
  EXPECT_EQ(status, 400);

  EXPECT_EQ(wire::parse_http_request(std::string(65 * 1024, 'x'), parsed,
                                     consumed, status, error),
            wire::HttpParse::kBad);
  EXPECT_EQ(status, 431);
}

TEST(HttpCodec, ConnectionAndExpectHeadersAreHonored) {
  wire::HttpRequest parsed;
  std::size_t consumed = 0;
  int status = 0;
  std::string error;
  ASSERT_EQ(wire::parse_http_request("POST /v1/ping HTTP/1.1\r\n"
                                     "Connection: close\r\n"
                                     "Expect: 100-continue\r\n"
                                     "Content-Length: 0\r\n\r\n",
                                     parsed, consumed, status, error),
            wire::HttpParse::kOk);
  EXPECT_FALSE(parsed.keep_alive);
  EXPECT_TRUE(parsed.expect_continue);

  // HTTP/1.0 defaults to close; headers before the body completes are
  // surfaced so the server can emit the interim 100 Continue.
  ASSERT_EQ(wire::parse_http_request("POST /v1/ping HTTP/1.0\r\n"
                                     "Expect: 100-continue\r\n"
                                     "Content-Length: 5\r\n\r\n",
                                     parsed, consumed, status, error),
            wire::HttpParse::kNeedMore);
  EXPECT_TRUE(parsed.headers_complete);
  EXPECT_TRUE(parsed.expect_continue);
  EXPECT_FALSE(parsed.keep_alive);
}

TEST(HttpCodec, TargetsMapToOps) {
  EXPECT_EQ(wire::http_op_from_target("/v1/open"), "open");
  EXPECT_EQ(wire::http_op_from_target("/v1/ping"), "ping");
  EXPECT_EQ(wire::http_op_from_target("/v1/"), "");
  EXPECT_EQ(wire::http_op_from_target("/v2/ping"), "");
  EXPECT_EQ(wire::http_op_from_target("/v1/a/b"), "");
  EXPECT_EQ(wire::http_op_from_target("/v1/ping?x=1"), "");
  EXPECT_EQ(wire::http_op_from_target("/"), "");
}

TEST(HttpCodec, StatusMappingCoversEveryErrorCode) {
  EXPECT_EQ(wire::http_status_for(ErrorCode::kOk), 200);
  EXPECT_EQ(wire::http_status_for(ErrorCode::kProtocol), 400);
  EXPECT_EQ(wire::http_status_for(ErrorCode::kInvalidArgument), 400);
  EXPECT_EQ(wire::http_status_for(ErrorCode::kUnsupportedVersion), 400);
  EXPECT_EQ(wire::http_status_for(ErrorCode::kUnknownSession), 404);
  EXPECT_EQ(wire::http_status_for(ErrorCode::kWrongState), 409);
  EXPECT_EQ(wire::http_status_for(ErrorCode::kSessionFinished), 409);
  EXPECT_EQ(wire::http_status_for(ErrorCode::kAdmissionLimit), 429);
  EXPECT_EQ(wire::http_status_for(ErrorCode::kDraining), 503);
  EXPECT_EQ(wire::http_status_for(ErrorCode::kSpaceBuildFailed), 500);
  EXPECT_EQ(wire::http_status_for(ErrorCode::kIo), 500);
  EXPECT_EQ(wire::http_status_for(ErrorCode::kInternal), 500);
}

// --- HTTP gateway against a live server -------------------------------------

TEST(HttpGateway, ScriptedSessionMatchesInProcessBitForBit) {
  // Reference: the same session driven directly against a fresh service.
  tuner::RunSummary reference;
  {
    tuner::TuningService local;
    const auto* kernel = tuner::find_service_kernel("gemm");
    const auto opened = local.open(scripted_gemm());
    while (true) {
      const auto ask = local.suggest({opened.session_id});
      if (ask.finished) break;
      csp::Config config;
      for (const auto& entry : ask.config) config.push_back(entry.value);
      local.report({opened.session_id,
                    kernel->model->gflops(opened.info.param_names, config),
                    -1.0});
    }
    reference = local.close({opened.session_id}).run;
    ASSERT_GT(reference.evaluations, 0u);
  }

  tuner::ServiceServerOptions options;
  options.enable_http = true;
  LiveServer live(options);
  const auto* kernel = tuner::find_service_kernel("gemm");

  const int fd = raw_connect(live.server.http_port());
  int status = 0;
  json::Value reply;
  ASSERT_TRUE(http_post(fd, "open", wire::to_json(scripted_gemm()).dump(),
                        status, reply));
  ASSERT_EQ(status, 200);
  const auto opened = wire::open_session_response_from_json(reply);

  // The whole ask/tell loop rides one keep-alive connection.
  while (true) {
    json::Value ask_body = json::Value::object();
    ask_body.set("session_id", opened.session_id);
    ASSERT_TRUE(http_post(fd, "suggest", ask_body.dump(), status, reply));
    ASSERT_EQ(status, 200);
    const auto ask = wire::suggest_response_from_json(reply);
    if (ask.finished) break;
    csp::Config config;
    for (const auto& entry : ask.config) config.push_back(entry.value);
    tuner::ReportRequest report;
    report.session_id = opened.session_id;
    report.gflops = kernel->model->gflops(opened.info.param_names, config);
    report.measure_seconds = -1.0;
    ASSERT_TRUE(http_post(fd, "report", wire::to_json(report).dump(), status,
                          reply));
    ASSERT_EQ(status, 200);
  }
  json::Value best_body = json::Value::object();
  best_body.set("session_id", opened.session_id);
  ASSERT_TRUE(http_post(fd, "best", best_body.dump(), status, reply));
  ASSERT_EQ(status, 200);
  EXPECT_GT(wire::best_response_from_json(reply).evaluations, 0u);

  ASSERT_TRUE(http_post(fd, "close", best_body.dump(), status, reply));
  ASSERT_EQ(status, 200);
  const auto closed = wire::run_summary_from_json(reply.at("run"));
  EXPECT_EQ(closed, reference);
  net::close_fd(fd);
}

TEST(HttpGateway, ErrorsCarryWireCodesAndHttpStatuses) {
  tuner::ServiceServerOptions options;
  options.enable_http = true;
  LiveServer live(options);

  const int fd = raw_connect(live.server.http_port());
  int status = 0;
  json::Value reply;

  // Unknown session: typed wire error, 404.
  ASSERT_TRUE(http_post(fd, "info", "{\"session_id\":999}", status, reply));
  EXPECT_EQ(status, 404);
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("error").at("code").as_string(), "unknown_session");

  // Unknown op under /v1/: kProtocol, 400.
  ASSERT_TRUE(http_post(fd, "frobnicate", "{}", status, reply));
  EXPECT_EQ(status, 400);
  EXPECT_EQ(reply.at("error").at("code").as_string(), "protocol");

  // Malformed body JSON: kProtocol, 400 — and the connection survives.
  ASSERT_TRUE(http_post(fd, "ping", "{not json", status, reply));
  EXPECT_EQ(status, 400);
  ASSERT_TRUE(http_post(fd, "ping", "{}", status, reply));
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(reply.at("pong").as_bool());

  // GET is not a gateway method.
  send_all(fd, "GET /v1/ping HTTP/1.1\r\nHost: x\r\n\r\n");
  std::string body;
  ASSERT_TRUE(read_http_response(fd, status, body));
  EXPECT_EQ(status, 405);
  net::close_fd(fd);
}

TEST(HttpGateway, ExpectContinueGetsTheInterimResponse) {
  tuner::ServiceServerOptions options;
  options.enable_http = true;
  LiveServer live(options);

  const int fd = raw_connect(live.server.http_port());
  send_all(fd,
           "POST /v1/ping HTTP/1.1\r\nHost: x\r\nExpect: 100-continue\r\n"
           "Content-Length: 2\r\n\r\n");
  int status = 0;
  std::string body;
  ASSERT_TRUE(read_http_response(fd, status, body));
  EXPECT_EQ(status, 100);
  send_all(fd, "{}");
  ASSERT_TRUE(read_http_response(fd, status, body));
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(json::Value::parse(body).at("pong").as_bool());
  net::close_fd(fd);
}

// --- drain over the event loop ----------------------------------------------

TEST(Hardening, DrainExitReleasesWaitOnlyAfterTheReplyIsFlushed) {
  tuner::TuningService service;
  tuner::ServiceServerOptions options;
  options.port = 0;
  options.exit_when_drained = true;
  tuner::ServiceServer server(service, options);
  server.start();

  ASSERT_FALSE(server.wait_for(0.05));  // nothing drained yet

  tuner::ServiceClientOptions client_options;
  client_options.port = server.port();
  tuner::ServiceClient client(client_options);
  const auto drained = client.drain({true, 10.0});
  EXPECT_TRUE(drained.drained);
  // The reply already reached the client, so the flush-then-signal order
  // guarantees wait_for releases promptly.
  EXPECT_TRUE(server.wait_for(5.0));
  server.stop();
}
