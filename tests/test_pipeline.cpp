// Tests for TuningProblem and the constraint-lowering pipeline.
#include <gtest/gtest.h>

#include "tunespace/csp/builtin_constraints.hpp"
#include "tunespace/expr/function_constraint.hpp"
#include "tunespace/expr/lexer.hpp"
#include "tunespace/tuner/pipeline.hpp"

using namespace tunespace;
using csp::Value;

namespace {
tuner::TuningProblem paper_spec() {
  tuner::TuningProblem spec("paper");
  spec.add_param("block_size_x", {16, 32, 64, 128})
      .add_param("block_size_y", {1, 2, 4, 8, 16, 32});
  spec.add_constraint("32 <= block_size_x * block_size_y <= 1024");
  return spec;
}
}  // namespace

TEST(TuningProblemTest, Builders) {
  auto spec = paper_spec();
  EXPECT_EQ(spec.num_params(), 2u);
  EXPECT_EQ(spec.cartesian_size(), 24u);
  EXPECT_EQ(spec.constraints().size(), 1u);
}

TEST(TuningProblemTest, CartesianSaturates) {
  tuner::TuningProblem spec("big");
  std::vector<std::int64_t> values;
  for (std::int64_t i = 0; i < 100000; ++i) values.push_back(i);
  for (int p = 0; p < 6; ++p) spec.add_param("p" + std::to_string(p), values);
  EXPECT_EQ(spec.cartesian_size(), std::numeric_limits<std::uint64_t>::max());
}

TEST(PipelineTest, OptimizedDecomposesAndRecognizes) {
  auto problem = tuner::build_problem(paper_spec(), tuner::PipelineOptions::optimized());
  // The chained constraint splits into two product constraints.
  ASSERT_EQ(problem.constraints().size(), 2u);
  EXPECT_NE(dynamic_cast<csp::ProductConstraint*>(problem.constraints()[0].get()),
            nullptr);
  EXPECT_NE(dynamic_cast<csp::ProductConstraint*>(problem.constraints()[1].get()),
            nullptr);
}

TEST(PipelineTest, OriginalKeepsMonolithicInterpretedConstraint) {
  auto problem = tuner::build_problem(paper_spec(), tuner::PipelineOptions::original());
  ASSERT_EQ(problem.constraints().size(), 1u);
  auto* fc = dynamic_cast<expr::FunctionConstraint*>(problem.constraints()[0].get());
  ASSERT_NE(fc, nullptr);
  EXPECT_EQ(fc->mode(), expr::EvalMode::Interpreted);
}

TEST(PipelineTest, CompiledRawUsesCompiledFunctions) {
  auto problem =
      tuner::build_problem(paper_spec(), tuner::PipelineOptions::compiled_raw());
  ASSERT_EQ(problem.constraints().size(), 1u);
  auto* fc = dynamic_cast<expr::FunctionConstraint*>(problem.constraints()[0].get());
  ASSERT_NE(fc, nullptr);
  EXPECT_EQ(fc->mode(), expr::EvalMode::Compiled);
}

TEST(PipelineTest, MalformedConstraintThrows) {
  tuner::TuningProblem spec("bad");
  spec.add_param("x", {1, 2});
  spec.add_constraint("x <=");
  EXPECT_THROW(tuner::build_problem(spec, tuner::PipelineOptions::optimized()),
               expr::SyntaxError);
}

TEST(PipelineTest, UnknownParameterInConstraintThrows) {
  tuner::TuningProblem spec("bad");
  spec.add_param("x", {1, 2});
  spec.add_constraint("x * nope <= 4");
  EXPECT_THROW(tuner::build_problem(spec, tuner::PipelineOptions::optimized()),
               std::out_of_range);
}

TEST(PipelineTest, ConstructTimesIncludeBuild) {
  auto methods = tuner::construction_methods(false);
  auto result = tuner::construct(paper_spec(), methods[0]);
  EXPECT_GT(result.stats.total_seconds(), 0.0);
  // By hand: x=16 -> y in {2..32} (5), x=32 -> all 6, x=64 -> y<=16 (5),
  // x=128 -> y<=8 (4); total 20 valid pairs.
  EXPECT_EQ(result.solutions.size(), 20u);
}

TEST(PipelineTest, MethodRegistry) {
  auto methods = tuner::construction_methods(true);
  ASSERT_EQ(methods.size(), 6u);
  EXPECT_EQ(methods[0].name, "optimized");
  EXPECT_EQ(methods[1].name, "ATF");
  EXPECT_EQ(methods[2].name, "original");
  EXPECT_EQ(methods[3].name, "brute-force");
  EXPECT_EQ(methods[4].name, "pyATF");
  EXPECT_EQ(methods[5].name, "blocking-smt");
}

TEST(PipelineTest, LambdaStyleConstraintWorks) {
  tuner::TuningProblem spec("lambda-style");
  spec.add_param("block_size_x", {16, 32, 64})
      .add_param("block_size_y", {1, 2, 4});
  spec.add_constraint("32 <= p[\"block_size_x\"] * p[\"block_size_y\"] <= 128");
  auto problem = tuner::build_problem(spec, tuner::PipelineOptions::optimized());
  EXPECT_EQ(problem.constraints().size(), 2u);
}
