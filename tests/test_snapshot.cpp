// Snapshot persistence: packed-column property tests, save/load round-trip
// equality across synthetic and real-world spaces (rows, indexes, neighbour
// and sampling queries, CSV bytes), rejection paths for corrupt / truncated /
// mismatched files, and the load_or_build construction cache.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tunespace/searchspace/io.hpp"
#include "tunespace/searchspace/neighbors.hpp"
#include "tunespace/searchspace/sampling.hpp"
#include "tunespace/searchspace/searchspace.hpp"
#include "tunespace/spaces/realworld.hpp"
#include "tunespace/spaces/synthetic.hpp"
#include "tunespace/util/rng.hpp"

using namespace tunespace;
namespace fs = std::filesystem;

namespace {

/// Fresh per-test scratch directory under the system temp dir.
class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tunespace-snapshot-" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& file) const { return (dir_ / file).string(); }

  fs::path dir_;
};

using PackedColumnTest = SnapshotTest;
using CsvTest = SnapshotTest;

tuner::TuningProblem tiny_spec() {
  tuner::TuningProblem spec("tiny");
  spec.add_param("block_size_x", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
      .add_param("block_size_y", {1, 2, 4, 8, 16, 32})
      .add_param("sh_power", {0, 1});
  spec.add_constraint("32 <= block_size_x * block_size_y <= 1024");
  spec.add_constraint("sh_power == 0 or block_size_x >= 16");
  return spec;
}

std::string csv_bytes(const searchspace::SearchSpace& space) {
  std::ostringstream os;
  searchspace::write_csv(space, os);
  return os.str();
}

/// Structural + behavioral equality between a fresh build and a reload.
void expect_identical(const searchspace::SearchSpace& fresh,
                      const searchspace::SearchSpace& loaded) {
  ASSERT_EQ(fresh.size(), loaded.size());
  ASSERT_EQ(fresh.num_params(), loaded.num_params());
  EXPECT_EQ(fresh.fingerprint(), loaded.fingerprint());
  EXPECT_EQ(csv_bytes(fresh), csv_bytes(loaded));

  for (std::size_t p = 0; p < fresh.num_params(); ++p) {
    EXPECT_EQ(fresh.solutions().column(p), loaded.solutions().column(p));
    EXPECT_EQ(fresh.present_values(p), loaded.present_values(p));
    for (std::uint32_t vi = 0; vi < fresh.problem().domain(p).size(); ++vi) {
      const auto a = fresh.rows_with(p, vi);
      const auto b = loaded.rows_with(p, vi);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    }
  }

  // Row lookups agree for every row (and the loaded table resolves them to
  // the same dense ids).
  const std::size_t probe = std::min<std::size_t>(fresh.size(), 500);
  for (std::size_t r = 0; r < probe; ++r) {
    const auto row = fresh.indices(r);
    EXPECT_EQ(fresh.find(row), loaded.find(row));
    EXPECT_EQ(loaded.find(row), r);
  }

  // Neighbour queries are identical.
  for (std::size_t r = 0; r < std::min<std::size_t>(fresh.size(), 50); ++r) {
    EXPECT_EQ(searchspace::neighbors_of(fresh, r),
              searchspace::neighbors_of(loaded, r));
  }

  // Sampling under the same seed is deterministic across fresh/loaded.
  util::Rng rng_a(99), rng_b(99);
  EXPECT_EQ(searchspace::latin_hypercube_sample(fresh, 16, rng_a),
            searchspace::latin_hypercube_sample(loaded, 16, rng_b));

  // Solve effort counters survive the round trip.
  EXPECT_EQ(fresh.solve_stats().nodes, loaded.solve_stats().nodes);
  EXPECT_EQ(fresh.solve_stats().constraint_checks,
            loaded.solve_stats().constraint_checks);
}

void corrupt_byte(const std::string& file, std::uint64_t offset) {
  std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f) << file;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5A);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// PackedColumn properties
// ---------------------------------------------------------------------------

TEST_F(PackedColumnTest, RandomAccessMatchesReferenceAcrossWidths) {
  for (unsigned bits : {0u, 1u, 3u, 5u, 8u, 13u, 16u, 21u, 31u, 32u}) {
    util::Rng rng(7 * bits + 1);
    solver::PackedColumn col(bits);
    std::vector<std::uint32_t> ref;
    const std::uint64_t mask = bits >= 32 ? 0xFFFFFFFFull : (1ull << bits) - 1;
    for (int i = 0; i < 2000; ++i) {
      const auto v = static_cast<std::uint32_t>(rng() & mask);
      col.push_back(v);
      ref.push_back(v);
    }
    ASSERT_EQ(col.size(), ref.size()) << "bits=" << bits;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(col.get(i), ref[i]) << "bits=" << bits << " i=" << i;
    }
  }
}

TEST_F(PackedColumnTest, AppendRangeMatchesElementwiseAppend) {
  for (unsigned bits : {1u, 7u, 11u, 24u, 32u}) {
    util::Rng rng(bits);
    solver::PackedColumn src(bits);
    const std::uint64_t mask = bits >= 32 ? 0xFFFFFFFFull : (1ull << bits) - 1;
    for (int i = 0; i < 777; ++i) {
      src.push_back(static_cast<std::uint32_t>(rng() & mask));
    }
    // Bulk bit blit across word boundaries vs an element loop.
    solver::PackedColumn bulk(bits), loop(bits);
    bulk.push_back(3 & static_cast<std::uint32_t>(mask));  // misalign the start
    loop.push_back(3 & static_cast<std::uint32_t>(mask));
    bulk.append(src, 5, 600);
    for (std::size_t i = 5; i < 605; ++i) loop.push_back(src.get(i));
    EXPECT_EQ(bulk, loop) << "bits=" << bits;
  }
}

TEST_F(PackedColumnTest, MixedWidthAppendAndEquality) {
  util::Rng rng(42);
  solver::PackedColumn narrow(5), wide;  // default is 32 bits
  for (int i = 0; i < 300; ++i) {
    const auto v = static_cast<std::uint32_t>(rng() & 31);
    narrow.push_back(v);
    wide.push_back(v);
  }
  EXPECT_EQ(narrow, wide);  // logical equality across widths
  EXPECT_EQ(wide, narrow);

  // Width-mismatched append falls back to element copies.
  solver::PackedColumn target;
  target.append(narrow, 10, 100);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(target.get(i), narrow.get(i + 10));
  }

  narrow.push_back(0);
  EXPECT_NE(narrow, wide);
}

TEST_F(PackedColumnTest, SolutionSetPackedMatchesUnpacked) {
  // The same enumeration appended to a packed (from problem) and an
  // unpacked (arity-only) SolutionSet reads back identically.
  const auto spec = tiny_spec();
  auto problem = tuner::build_problem(spec, tuner::PipelineOptions::optimized());
  solver::SolutionSet packed(problem);
  solver::SolutionSet unpacked(problem.num_variables());
  util::Rng rng(3);
  std::vector<std::uint32_t> row(problem.num_variables());
  for (int i = 0; i < 500; ++i) {
    for (std::size_t v = 0; v < row.size(); ++v) {
      row[v] = static_cast<std::uint32_t>(rng.index(problem.domain(v).size()));
    }
    packed.append(row.data());
    unpacked.append(row.data());
  }
  ASSERT_EQ(packed.size(), unpacked.size());
  for (std::size_t v = 0; v < packed.num_vars(); ++v) {
    EXPECT_LT(packed.column(v).bits(), 32u);
    EXPECT_EQ(packed.column(v), unpacked.column(v));
  }
  for (std::size_t r = 0; r < packed.size(); ++r) {
    EXPECT_EQ(packed.index_row(r), unpacked.index_row(r));
  }
  EXPECT_LT(packed.memory_bytes(), unpacked.memory_bytes());
}

// ---------------------------------------------------------------------------
// Snapshot round trips
// ---------------------------------------------------------------------------

TEST_F(SnapshotTest, RoundTripTinySpace) {
  const auto spec = tiny_spec();
  searchspace::SearchSpace fresh(spec);
  searchspace::save_snapshot(fresh, path("tiny.tss"));
  const auto loaded = searchspace::load_snapshot(spec, path("tiny.tss"));
  expect_identical(fresh, loaded);
  EXPECT_GT(loaded.size(), 0u);
  EXPECT_DOUBLE_EQ(fresh.sparsity(), loaded.sparsity());
}

TEST_F(SnapshotTest, RoundTripSynthetic) {
  const auto synth = spaces::make_synthetic(3, 200000, 3, 7);
  searchspace::SearchSpace fresh(synth.spec);
  searchspace::save_snapshot(fresh, path("synth.tss"));
  expect_identical(fresh,
                   searchspace::load_snapshot(synth.spec, path("synth.tss")));
}

TEST_F(SnapshotTest, RoundTripRealWorldGemm) {
  const auto rw = spaces::gemm();
  searchspace::SearchSpace fresh(rw.spec);
  searchspace::save_snapshot(fresh, path("gemm.tss"));
  expect_identical(fresh,
                   searchspace::load_snapshot(rw.spec, path("gemm.tss")));
}

TEST_F(SnapshotTest, RoundTripRealWorldHotspotShapeVerify) {
  const auto rw = spaces::hotspot();
  searchspace::SearchSpace fresh(rw.spec);
  searchspace::save_snapshot(fresh, path("hotspot.tss"));
  // The fast cache-hit verification level must be just as identical.
  expect_identical(fresh, searchspace::load_snapshot(
                              rw.spec, path("hotspot.tss"),
                              searchspace::SnapshotVerify::kShape));
}

TEST_F(SnapshotTest, RoundTripExplicitMethod) {
  const auto spec = tiny_spec();
  const auto methods = tuner::construction_methods();
  const auto& atf = methods[1];  // ChainOfTrees enumerates in its own order
  ASSERT_EQ(atf.name, "ATF");
  searchspace::SearchSpace fresh(spec, atf);
  searchspace::save_snapshot(fresh, path("atf.tss"));
  expect_identical(fresh,
                   searchspace::load_snapshot(spec, atf, path("atf.tss")));
}

TEST_F(SnapshotTest, SaveOfReloadedSpaceIsByteIdentical) {
  const auto spec = tiny_spec();
  searchspace::SearchSpace fresh(spec);
  searchspace::save_snapshot(fresh, path("a.tss"));
  const auto loaded = searchspace::load_snapshot(spec, path("a.tss"));
  searchspace::save_snapshot(loaded, path("b.tss"));
  std::ifstream fa(path("a.tss"), std::ios::binary);
  std::ifstream fb(path("b.tss"), std::ios::binary);
  std::stringstream sa, sb;
  sa << fa.rdbuf();
  sb << fb.rdbuf();
  // Only the stored original-construction-seconds stat may differ; mask the
  // simpler way: the files are equal except that one f64 header field.
  std::string bytes_a = sa.str(), bytes_b = sb.str();
  ASSERT_EQ(bytes_a.size(), bytes_b.size());
  constexpr std::size_t kConstructionSecondsOffset = 104;  // see io.cpp layout
  for (std::size_t i = 0; i < 8; ++i) {
    bytes_a[kConstructionSecondsOffset + i] = 0;
    bytes_b[kConstructionSecondsOffset + i] = 0;
  }
  EXPECT_EQ(bytes_a, bytes_b);
}

// ---------------------------------------------------------------------------
// Rejection paths
// ---------------------------------------------------------------------------

TEST_F(SnapshotTest, RejectsMissingFile) {
  EXPECT_THROW(searchspace::load_snapshot(tiny_spec(), path("nope.tss")),
               searchspace::SnapshotError);
}

TEST_F(SnapshotTest, RejectsBadMagic) {
  const auto spec = tiny_spec();
  searchspace::SearchSpace fresh(spec);
  searchspace::save_snapshot(fresh, path("s.tss"));
  corrupt_byte(path("s.tss"), 0);
  EXPECT_THROW(searchspace::load_snapshot(spec, path("s.tss")),
               searchspace::SnapshotError);
}

TEST_F(SnapshotTest, RejectsVersionMismatch) {
  const auto spec = tiny_spec();
  searchspace::SearchSpace fresh(spec);
  searchspace::save_snapshot(fresh, path("s.tss"));
  corrupt_byte(path("s.tss"), 8);  // format-version field
  EXPECT_THROW(searchspace::load_snapshot(spec, path("s.tss")),
               searchspace::SnapshotError);
}

TEST_F(SnapshotTest, RejectsWrongFingerprint) {
  const auto spec = tiny_spec();
  searchspace::SearchSpace fresh(spec);
  searchspace::save_snapshot(fresh, path("s.tss"));

  // Same shape, one domain value changed.
  auto other = tuner::TuningProblem("tiny");
  other.add_param("block_size_x", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 2048})
      .add_param("block_size_y", {1, 2, 4, 8, 16, 32})
      .add_param("sh_power", {0, 1});
  other.add_constraint("32 <= block_size_x * block_size_y <= 1024");
  other.add_constraint("sh_power == 0 or block_size_x >= 16");
  EXPECT_THROW(searchspace::load_snapshot(other, path("s.tss")),
               searchspace::SnapshotError);

  // Same spec, different construction method (enumeration order differs).
  const auto methods = tuner::construction_methods();
  EXPECT_THROW(searchspace::load_snapshot(spec, methods[1], path("s.tss")),
               searchspace::SnapshotError);
}

TEST_F(SnapshotTest, RejectsTruncatedFile) {
  const auto spec = tiny_spec();
  searchspace::SearchSpace fresh(spec);
  searchspace::save_snapshot(fresh, path("s.tss"));
  const auto full = fs::file_size(path("s.tss"));
  fs::resize_file(path("s.tss"), full / 2);
  EXPECT_THROW(searchspace::load_snapshot(spec, path("s.tss")),
               searchspace::SnapshotError);
  // Shape-level verification catches truncation too (section bounds).
  EXPECT_THROW(searchspace::load_snapshot(spec, path("s.tss"),
                                          searchspace::SnapshotVerify::kShape),
               searchspace::SnapshotError);
}

TEST_F(SnapshotTest, RejectsCorruptedPayload) {
  const auto spec = tiny_spec();
  searchspace::SearchSpace fresh(spec);
  searchspace::save_snapshot(fresh, path("s.tss"));
  // Flip one byte in the middle of the file (payload sections); the full
  // verification level must detect it via the section checksums.
  corrupt_byte(path("s.tss"), fs::file_size(path("s.tss")) / 2);
  EXPECT_THROW(searchspace::load_snapshot(spec, path("s.tss"),
                                          searchspace::SnapshotVerify::kFull),
               searchspace::SnapshotError);
}

// ---------------------------------------------------------------------------
// load_or_build cache
// ---------------------------------------------------------------------------

TEST_F(SnapshotTest, LoadOrBuildPopulatesAndHitsCache) {
  const auto spec = tiny_spec();
  const std::string cache = (dir_ / "cache").string();

  const auto built = searchspace::SearchSpace::load_or_build(spec, cache);
  ASSERT_TRUE(fs::exists(cache));
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(cache)) {
    ++files;
    EXPECT_EQ(e.path().extension(), ".tss");
  }
  EXPECT_EQ(files, 1u);

  const auto reloaded = searchspace::SearchSpace::load_or_build(spec, cache);
  expect_identical(built, reloaded);

  // A different spec gets its own cache entry instead of a false hit.
  auto other = tiny_spec();
  other.add_constraint("block_size_y >= 2");
  const auto other_space = searchspace::SearchSpace::load_or_build(other, cache);
  EXPECT_NE(other_space.fingerprint(), built.fingerprint());
  EXPECT_LT(other_space.size(), built.size());
  files = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(cache)) ++files;
  EXPECT_EQ(files, 2u);
}

TEST_F(SnapshotTest, LoadOrBuildRebuildsOnCorruptHeader) {
  const auto spec = tiny_spec();
  const std::string cache = (dir_ / "cache").string();
  const auto built = searchspace::SearchSpace::load_or_build(spec, cache);
  for (const auto& e : fs::directory_iterator(cache)) {
    corrupt_byte(e.path().string(), 0);  // smash the magic
  }
  const auto rebuilt = searchspace::SearchSpace::load_or_build(spec, cache);
  expect_identical(built, rebuilt);
}

TEST_F(SnapshotTest, LoadOrBuildRefusesLambdaSpecs) {
  auto spec = tiny_spec();
  spec.add_constraint({"block_size_x", "block_size_y"},
                      [](std::span<const csp::Value> v) {
                        return v[0].as_int() >= v[1].as_int();
                      },
                      "x >= y");
  const std::string cache = (dir_ / "cache").string();
  const auto space = searchspace::SearchSpace::load_or_build(spec, cache);
  EXPECT_GT(space.size(), 0u);
  // Native lambdas cannot be fingerprinted: nothing may be cached.
  EXPECT_FALSE(fs::exists(cache));
}

// ---------------------------------------------------------------------------
// CSV exactness
// ---------------------------------------------------------------------------

TEST_F(CsvTest, DoublesRoundTripExactly) {
  tuner::TuningProblem spec("reals");
  spec.add_param("alpha", std::vector<csp::Value>{csp::Value(0.1), csp::Value(0.5),
                                                  csp::Value(1.0 / 3.0),
                                                  csp::Value(2.0)});
  spec.add_param("mode", std::vector<csp::Value>{csp::Value("NHWC"),
                                                 csp::Value("NCHW")});
  searchspace::SearchSpace space(spec);
  ASSERT_EQ(space.size(), 8u);

  std::stringstream csv;
  searchspace::write_csv(space, csv);
  const auto rows = searchspace::read_csv(spec, csv);
  ASSERT_EQ(rows.size(), space.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto expect = space.config(r);
    ASSERT_EQ(rows[r].size(), expect.size());
    for (std::size_t p = 0; p < expect.size(); ++p) {
      EXPECT_EQ(rows[r][p], expect[p]) << "row " << r << " param " << p;
      EXPECT_EQ(rows[r][p].kind(), expect[p].kind()) << "canonical kind";
    }
  }
}

TEST_F(CsvTest, QuotedStringsWithCommasRoundTrip) {
  tuner::TuningProblem spec("strs");
  spec.add_param("layout", std::vector<csp::Value>{csp::Value("n,h,w,c"),
                                                   csp::Value("NCHW")});
  spec.add_param("width", {2, 4});
  searchspace::SearchSpace space(spec);
  ASSERT_EQ(space.size(), 4u);

  std::stringstream csv;
  searchspace::write_csv(space, csv);
  const auto rows = searchspace::read_csv(spec, csv);
  ASSERT_EQ(rows.size(), space.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(rows[r], space.config(r)) << "row " << r;
  }
}

TEST_F(CsvTest, WriteIsLocaleIndependent) {
  tuner::TuningProblem spec("reals");
  spec.add_param("alpha", std::vector<csp::Value>{csp::Value(0.5), csp::Value(1.5)});
  searchspace::SearchSpace space(spec);

  std::ostringstream plain;
  searchspace::write_csv(space, plain);

  // A stream imbued with a grouping/comma-decimal locale must produce the
  // same bytes (write_csv pins the classic locale internally).
  struct CommaDecimal : std::numpunct<char> {
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
  };
  std::ostringstream weird;
  weird.imbue(std::locale(std::locale::classic(), new CommaDecimal));
  searchspace::write_csv(space, weird);
  EXPECT_EQ(plain.str(), weird.str());
  EXPECT_NE(plain.str().find("0.5"), std::string::npos);
}

TEST_F(CsvTest, TruncatedRowReportsLine) {
  const auto spec = tiny_spec();
  searchspace::SearchSpace space(spec);
  std::stringstream csv;
  searchspace::write_csv(space, csv);

  // Drop the last cell of the third data row.
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(csv, line)) lines.push_back(line);
  ASSERT_GT(lines.size(), 4u);
  lines[3] = lines[3].substr(0, lines[3].rfind(','));
  std::string mangled;
  for (const auto& l : lines) mangled += l + "\n";

  std::istringstream in(mangled);
  try {
    searchspace::read_csv(spec, in);
    FAIL() << "expected read_csv to reject the truncated row";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  }
}
