// Tests for neighbour queries, validated against naive reference
// implementations over the materialized space.
#include <gtest/gtest.h>

#include <algorithm>

#include "tunespace/searchspace/neighbors.hpp"

using namespace tunespace;
using namespace tunespace::searchspace;

namespace {

tuner::TuningProblem spec3d() {
  tuner::TuningProblem spec("3d");
  spec.add_param("a", {1, 2, 4, 8})
      .add_param("b", {1, 2, 3, 4, 5})
      .add_param("c", {1, 2});
  spec.add_constraint("a * b <= 16");
  spec.add_constraint("b + c >= 2");
  return spec;
}

// Reference: rows differing from `row` in exactly `dist` parameters.
std::vector<std::size_t> naive_hamming(const SearchSpace& s, std::size_t row,
                                       std::size_t max_dist) {
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < s.size(); ++r) {
    if (r == row) continue;
    std::size_t diff = 0;
    for (std::size_t p = 0; p < s.num_params(); ++p) {
      if (s.value_index(r, p) != s.value_index(row, p)) ++diff;
    }
    if (diff >= 1 && diff <= max_dist) out.push_back(r);
  }
  return out;
}

}  // namespace

TEST(Neighbors, Hamming1MatchesNaive) {
  SearchSpace space(spec3d());
  ASSERT_GT(space.size(), 0u);
  for (std::size_t row = 0; row < space.size(); ++row) {
    auto fast = neighbors_of(space, row, NeighborMethod::Hamming1);
    auto ref = naive_hamming(space, row, 1);
    std::sort(fast.begin(), fast.end());
    std::sort(ref.begin(), ref.end());
    EXPECT_EQ(fast, ref) << "row " << row;
  }
}

TEST(Neighbors, WithinHamming2MatchesNaive) {
  SearchSpace space(spec3d());
  for (std::size_t row = 0; row < space.size(); row += 3) {
    auto fast = neighbors_within_hamming(space, row, 2);
    auto ref = naive_hamming(space, row, 2);
    std::sort(ref.begin(), ref.end());
    EXPECT_EQ(fast, ref) << "row " << row;
  }
}

TEST(Neighbors, FullHammingReachesEverything) {
  SearchSpace space(spec3d());
  auto all = neighbors_within_hamming(space, 0, space.num_params());
  EXPECT_EQ(all.size(), space.size() - 1);
}

TEST(Neighbors, AdjacentIsSubsetOfHamming1) {
  SearchSpace space(spec3d());
  for (std::size_t row = 0; row < space.size(); ++row) {
    auto adj = neighbors_of(space, row, NeighborMethod::Adjacent);
    auto ham = neighbors_of(space, row, NeighborMethod::Hamming1);
    std::sort(ham.begin(), ham.end());
    for (std::size_t n : adj) {
      EXPECT_TRUE(std::binary_search(ham.begin(), ham.end(), n));
      // Adjacent differs in exactly one param by one present-value step.
      std::size_t diffs = 0;
      for (std::size_t p = 0; p < space.num_params(); ++p) {
        if (space.value_index(row, p) != space.value_index(n, p)) ++diffs;
      }
      EXPECT_EQ(diffs, 1u);
    }
  }
}

TEST(Neighbors, StrictlyAdjacentUsesDeclaredOrder) {
  SearchSpace space(spec3d());
  for (std::size_t row = 0; row < space.size(); ++row) {
    for (std::size_t n : neighbors_of(space, row, NeighborMethod::StrictlyAdjacent)) {
      std::size_t diffs = 0;
      for (std::size_t p = 0; p < space.num_params(); ++p) {
        const auto a = space.value_index(row, p), b = space.value_index(n, p);
        if (a != b) {
          ++diffs;
          EXPECT_EQ(std::max(a, b) - std::min(a, b), 1u);
        }
      }
      EXPECT_EQ(diffs, 1u);
    }
  }
}

TEST(Neighbors, IndexPrecomputesAllLists) {
  SearchSpace space(spec3d());
  NeighborIndex index(space, NeighborMethod::Hamming1);
  std::size_t edges = 0;
  for (std::size_t row = 0; row < space.size(); ++row) {
    auto direct = neighbors_of(space, row, NeighborMethod::Hamming1);
    EXPECT_EQ(index.neighbors(row), direct);
    edges += direct.size();
  }
  EXPECT_EQ(index.total_edges(), edges);
  // Hamming-1 adjacency is symmetric, so the edge count is even.
  EXPECT_EQ(edges % 2, 0u);
}
