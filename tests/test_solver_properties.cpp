// Cross-solver property tests: on randomized problems built through the
// full user-level pipeline (constraint strings), all construction methods
// must produce the identical solution set (the paper validates every solver
// against brute force, §5).
#include <gtest/gtest.h>

#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/solver/validate.hpp"
#include "tunespace/spaces/synthetic.hpp"
#include "tunespace/tuner/pipeline.hpp"
#include "tunespace/util/rng.hpp"

using namespace tunespace;

namespace {

/// Random small TuningProblem with string constraints covering the
/// recognizer's full surface (products, sums, divisibility, chains,
/// disjunctions, membership).
tuner::TuningProblem random_spec(util::Rng& rng) {
  tuner::TuningProblem spec("random");
  const std::size_t nvars = 2 + rng.index(3);
  std::vector<std::string> names;
  std::vector<std::int64_t> maxes;
  for (std::size_t i = 0; i < nvars; ++i) {
    const std::string name = "v" + std::to_string(i);
    std::vector<std::int64_t> values;
    const std::int64_t n = 2 + static_cast<std::int64_t>(rng.index(6));
    for (std::int64_t x = 1; x <= n; ++x) values.push_back(x);
    spec.add_param(name, values);
    names.push_back(name);
    maxes.push_back(n);
  }
  const std::size_t nconstraints = 1 + rng.index(3);
  for (std::size_t c = 0; c < nconstraints; ++c) {
    const std::string a = names[rng.index(names.size())];
    const std::string b = names[rng.index(names.size())];
    switch (rng.index(7)) {
      case 0:
        spec.add_constraint(a + " * " + b + " <= " +
                            std::to_string(rng.uniform_int(2, 20)));
        break;
      case 1:
        spec.add_constraint(a + " + " + b + " >= " +
                            std::to_string(rng.uniform_int(2, 8)));
        break;
      case 2:
        spec.add_constraint(a + " % " + b + " == 0");
        break;
      case 3:
        spec.add_constraint("2 <= " + a + " * " + b + " <= " +
                            std::to_string(rng.uniform_int(4, 24)));
        break;
      case 4:
        spec.add_constraint(a + " <= " + b);
        break;
      case 5:
        spec.add_constraint(a + " in (1, 2, 4)");
        break;
      default:
        spec.add_constraint(a + " == 1 or " + b + " >= 2");
        break;
    }
  }
  return spec;
}

}  // namespace

class SolverAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreement, AllMethodsProduceIdenticalSolutionSets) {
  util::Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 10; ++iter) {
    const tuner::TuningProblem spec = random_spec(rng);
    auto methods = tuner::construction_methods(/*include_blocking=*/true);
    solver::SolveResult reference = tuner::construct(spec, methods.back());
    for (std::size_t m = 0; m + 1 < methods.size(); ++m) {
      auto result = tuner::construct(spec, methods[m]);
      EXPECT_TRUE(result.solutions.same_solutions(reference.solutions))
          << methods[m].name << " disagrees on a random spec: "
          << result.solutions.size() << " vs " << reference.solutions.size();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreement, ::testing::Range(0, 10));

// The same agreement property on a slice of the synthetic evaluation suite
// (small targets to keep test time bounded).
class SyntheticAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SyntheticAgreement, MethodsAgreeOnGeneratedSpaces) {
  const auto space = spaces::make_synthetic(
      /*dims=*/2 + static_cast<std::size_t>(GetParam()) % 4,
      /*target_cartesian=*/2000,
      /*num_constraints=*/1 + static_cast<std::size_t>(GetParam()) % 6,
      /*seed=*/77 + static_cast<std::uint64_t>(GetParam()));
  auto methods = tuner::construction_methods(false);
  solver::SolveResult reference;
  bool first = true;
  for (const auto& method : methods) {
    auto result = tuner::construct(space.spec, method);
    if (first) {
      reference = std::move(result);
      first = false;
      continue;
    }
    EXPECT_TRUE(result.solutions.same_solutions(reference.solutions))
        << method.name << " on " << space.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, SyntheticAgreement, ::testing::Range(0, 12));

// Pipeline-variant property: for a fixed spec, every PipelineOptions
// combination must produce the same solution set under the same solver
// (decomposition/recognition are semantics-preserving).
TEST(PipelineVariants, AllOptionCombinationsAgree) {
  util::Rng rng(31337);
  for (int iter = 0; iter < 12; ++iter) {
    const tuner::TuningProblem spec = random_spec(rng);
    solver::SolveResult reference;
    bool first = true;
    for (bool decompose : {false, true}) {
      for (bool recognize : {false, true}) {
        for (auto mode : {expr::EvalMode::Compiled, expr::EvalMode::Interpreted}) {
          tuner::Method method{"probe",
                               tuner::PipelineOptions{decompose, recognize, mode},
                               std::make_unique<solver::OptimizedBacktracking>()};
          auto result = tuner::construct(spec, method);
          if (first) {
            reference = std::move(result);
            first = false;
            continue;
          }
          EXPECT_TRUE(result.solutions.same_solutions(reference.solutions))
              << "decompose=" << decompose << " recognize=" << recognize;
        }
      }
    }
  }
}
