// Unit tests for the tree-walking interpreter: Python semantics.
#include <gtest/gtest.h>

#include "tunespace/expr/interpreter.hpp"
#include "tunespace/expr/parser.hpp"

using namespace tunespace::expr;
using tunespace::csp::Value;

namespace {
Value ev(const std::string& src,
         const std::unordered_map<std::string, Value>& vars = {}) {
  return eval(*parse(src), map_env(vars));
}
}  // namespace

TEST(Interpreter, IntArithmetic) {
  EXPECT_EQ(ev("2 + 3 * 4"), Value(14));
  EXPECT_EQ(ev("10 - 3"), Value(7));
  EXPECT_EQ(ev("2 ** 10"), Value(1024));
  EXPECT_TRUE(ev("2 ** 10").is_int());
}

TEST(Interpreter, TrueDivisionAlwaysReal) {
  EXPECT_EQ(ev("7 / 2"), Value(3.5));
  EXPECT_TRUE(ev("4 / 2").is_real());
  EXPECT_EQ(ev("4 / 2"), Value(2.0));
}

TEST(Interpreter, FloorDivisionPythonSemantics) {
  EXPECT_EQ(ev("7 // 2"), Value(3));
  EXPECT_EQ(ev("-7 // 2"), Value(-4));  // floors toward -inf
  EXPECT_EQ(ev("7 // -2"), Value(-4));
  EXPECT_EQ(ev("7.5 // 2"), Value(3.0));
}

TEST(Interpreter, ModuloPythonSemantics) {
  EXPECT_EQ(ev("7 % 3"), Value(1));
  EXPECT_EQ(ev("-7 % 3"), Value(2));   // sign of divisor
  EXPECT_EQ(ev("7 % -3"), Value(-2));
  EXPECT_EQ(ev("-7 % -3"), Value(-1));
}

TEST(Interpreter, DivisionByZeroRaises) {
  EXPECT_THROW(ev("1 / 0"), EvalError);
  EXPECT_THROW(ev("1 // 0"), EvalError);
  EXPECT_THROW(ev("1 % 0"), EvalError);
}

TEST(Interpreter, IntOverflowPromotesToReal) {
  const Value v = ev("2 ** 63");
  EXPECT_TRUE(v.is_real());
  EXPECT_DOUBLE_EQ(v.as_real(), 9223372036854775808.0);
}

TEST(Interpreter, NegativeExponentGoesReal) {
  EXPECT_EQ(ev("2 ** -1"), Value(0.5));
}

TEST(Interpreter, ChainedComparison) {
  EXPECT_EQ(ev("1 < 2 < 3"), Value(true));
  EXPECT_EQ(ev("1 < 3 < 2"), Value(false));
  EXPECT_EQ(ev("2 <= 2 <= 2"), Value(true));
}

TEST(Interpreter, ChainShortCircuits) {
  // If the first comparison fails, the rest must not be evaluated:
  // 1/0 would raise.
  EXPECT_EQ(ev("3 < 2 < 1 / 0"), Value(false));
}

TEST(Interpreter, BoolOps) {
  EXPECT_EQ(ev("True and False"), Value(false));
  EXPECT_EQ(ev("True or False"), Value(true));
  EXPECT_EQ(ev("not 0"), Value(true));
  // Short circuit: rhs division by zero never runs.
  EXPECT_EQ(ev("False and 1 / 0"), Value(false));
  EXPECT_EQ(ev("True or 1 / 0"), Value(true));
}

TEST(Interpreter, Membership) {
  EXPECT_EQ(ev("2 in (1, 2, 3)"), Value(true));
  EXPECT_EQ(ev("5 in (1, 2, 3)"), Value(false));
  EXPECT_EQ(ev("5 not in (1, 2, 3)"), Value(true));
  EXPECT_EQ(ev("'a' in ('a', 'b')"), Value(true));
}

TEST(Interpreter, Variables) {
  std::unordered_map<std::string, Value> vars{{"x", Value(8)}, {"y", Value(4)}};
  EXPECT_EQ(eval(*parse("x * y"), map_env(vars)), Value(32));
  EXPECT_THROW(eval(*parse("z"), map_env(vars)), EvalError);
}

TEST(Interpreter, Builtins) {
  EXPECT_EQ(ev("min(3, 1, 2)"), Value(1));
  EXPECT_EQ(ev("max(3, 1, 2)"), Value(3));
  EXPECT_EQ(ev("abs(-5)"), Value(5));
  EXPECT_EQ(ev("abs(-5.5)"), Value(5.5));
  EXPECT_EQ(ev("pow(2, 8)"), Value(256));
  EXPECT_EQ(ev("gcd(12, 18)"), Value(6));
  EXPECT_EQ(ev("int(3.7)"), Value(3));
  EXPECT_EQ(ev("float(3)"), Value(3.0));
  EXPECT_THROW(ev("frobnicate(1)"), EvalError);
}

TEST(Interpreter, StringOps) {
  EXPECT_EQ(ev("'a' + 'b'"), Value("ab"));
  EXPECT_EQ(ev("'a' == 'a'"), Value(true));
  EXPECT_EQ(ev("'a' < 'b'"), Value(true));
  EXPECT_THROW(ev("'a' * 'b'"), EvalError);
  EXPECT_THROW(ev("'a' < 1"), EvalError);
}

TEST(Interpreter, MixedIntRealComparisons) {
  EXPECT_EQ(ev("1 == 1.0"), Value(true));
  EXPECT_EQ(ev("3 > 2.5"), Value(true));
}

TEST(Interpreter, PaperExampleConstraint) {
  std::unordered_map<std::string, Value> vars{{"block_size_x", Value(64)},
                                              {"block_size_y", Value(8)}};
  EXPECT_TRUE(eval_bool(*parse("32 <= block_size_x * block_size_y <= 1024"),
                        map_env(vars)));
  vars["block_size_y"] = Value(32);
  EXPECT_FALSE(eval_bool(*parse("32 <= block_size_x * block_size_y <= 1024"),
                         map_env(vars)));
}
