// Tests for uniform and Latin Hypercube sampling over resolved spaces.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tunespace/searchspace/sampling.hpp"

using namespace tunespace;
using namespace tunespace::searchspace;

namespace {

tuner::TuningProblem sample_spec() {
  tuner::TuningProblem spec("sample");
  spec.add_param("x", {1, 2, 3, 4, 5, 6, 7, 8})
      .add_param("y", {1, 2, 3, 4, 5, 6, 7, 8})
      .add_param("z", {1, 2, 3, 4});
  spec.add_constraint("x + y <= 12");
  return spec;
}

}  // namespace

TEST(Sampling, RandomSampleDistinctAndInRange) {
  SearchSpace space(sample_spec());
  util::Rng rng(5);
  auto rows = random_sample(space, 50, rng);
  EXPECT_EQ(rows.size(), 50u);
  std::set<std::size_t> unique(rows.begin(), rows.end());
  EXPECT_EQ(unique.size(), rows.size());
  for (std::size_t r : rows) EXPECT_LT(r, space.size());
}

TEST(Sampling, RandomSampleClampsToSize) {
  SearchSpace space(sample_spec());
  util::Rng rng(5);
  auto rows = random_sample(space, space.size() * 10, rng);
  EXPECT_EQ(rows.size(), space.size());
}

TEST(Sampling, RandomSampleDeterministicInSeed) {
  SearchSpace space(sample_spec());
  util::Rng a(42), b(42), c(43);
  EXPECT_EQ(random_sample(space, 20, a), random_sample(space, 20, b));
  util::Rng a2(42);
  EXPECT_NE(random_sample(space, 20, a2), random_sample(space, 20, c));
}

TEST(Sampling, SnapToValidReturnsExactHit) {
  SearchSpace space(sample_spec());
  for (std::size_t r = 0; r < space.size(); r += 7) {
    EXPECT_EQ(snap_to_valid(space, space.indices(r)), r);
  }
}

TEST(Sampling, SnapToValidFindsNearbyConfig) {
  SearchSpace space(sample_spec());
  // (8, 8, 0) violates x + y <= 12; the snap must return a valid row.
  const std::size_t row = snap_to_valid(space, {7, 7, 0});
  const csp::Config config = space.config(row);
  EXPECT_LE(config[0].as_int() + config[1].as_int(), 12);
  // And it should stay reasonably close to the corner.
  EXPECT_GE(config[0].as_int() + config[1].as_int(), 10);
}

TEST(Sampling, LatinHypercubeCoverageAndValidity) {
  SearchSpace space(sample_spec());
  util::Rng rng(9);
  auto rows = latin_hypercube_sample(space, 16, rng);
  EXPECT_GT(rows.size(), 8u);  // dedup may shrink slightly
  std::set<std::size_t> unique(rows.begin(), rows.end());
  EXPECT_EQ(unique.size(), rows.size());
  // Marginal coverage: samples should spread over each parameter's values,
  // hitting clearly more than one stratum.
  for (std::size_t p = 0; p < space.num_params(); ++p) {
    std::set<std::uint32_t> seen;
    for (std::size_t r : rows) seen.insert(space.value_index(r, p));
    EXPECT_GE(seen.size(), std::min<std::size_t>(3, space.present_values(p).size()))
        << "param " << p;
  }
}

TEST(Sampling, LatinHypercubeOnTightSpace) {
  tuner::TuningProblem spec("tight");
  spec.add_param("a", {1, 2, 3, 4}).add_param("b", {1, 2, 3, 4});
  spec.add_constraint("a == b");
  SearchSpace space(spec);
  ASSERT_EQ(space.size(), 4u);
  util::Rng rng(1);
  auto rows = latin_hypercube_sample(space, 4, rng);
  for (std::size_t r : rows) {
    EXPECT_EQ(space.value(r, 0), space.value(r, 1));
  }
}

TEST(Sampling, EmptySpaceYieldsNothing) {
  tuner::TuningProblem spec("empty");
  spec.add_param("a", {1, 2});
  spec.add_constraint("a >= 10");
  SearchSpace space(spec);
  util::Rng rng(1);
  EXPECT_TRUE(latin_hypercube_sample(space, 4, rng).empty());
  EXPECT_TRUE(random_sample(space, 4, rng).empty());
}
