// Solver unit tests: each of the five construction methods on hand-crafted
// problems with known solution sets, plus edge cases.
#include <gtest/gtest.h>

#include "tunespace/csp/builtin_constraints.hpp"
#include "tunespace/expr/function_constraint.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/solver/blocking_enumerator.hpp"
#include "tunespace/solver/brute_force.hpp"
#include "tunespace/solver/chain_of_trees.hpp"
#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/solver/original_backtracking.hpp"
#include "tunespace/solver/validate.hpp"

using namespace tunespace;
using namespace tunespace::csp;
using namespace tunespace::solver;

namespace {

// x in 1..4, y in 1..4, x*y <= 4: 8 solutions.
Problem small_product_problem() {
  Problem p;
  p.add_variable("x", Domain::range(1, 4));
  p.add_variable("y", Domain::range(1, 4));
  p.add_constraint(std::make_unique<MaxProduct>(4, std::vector<std::string>{"x", "y"}));
  return p;
}

}  // namespace

class EverySolver : public ::testing::TestWithParam<int> {
 protected:
  SolverPtr make() const {
    switch (GetParam()) {
      case 0: return std::make_unique<OptimizedBacktracking>();
      case 1: return std::make_unique<OriginalBacktracking>();
      case 2: return std::make_unique<BruteForce>();
      case 3: return std::make_unique<ChainOfTrees>();
      case 4: return std::make_unique<ChainOfTrees>("pyATF");
      default: return std::make_unique<BlockingEnumerator>();
    }
  }
};

TEST_P(EverySolver, SmallProductProblem) {
  Problem p = small_product_problem();
  auto result = make()->solve(p);
  EXPECT_EQ(result.solutions.size(), 8u);
  // Every reported solution must satisfy the problem.
  for (std::size_t r = 0; r < result.solutions.size(); ++r) {
    EXPECT_TRUE(p.config_valid(result.solutions.config(r, p)));
  }
}

TEST_P(EverySolver, NoConstraintsYieldsCartesian) {
  Problem p;
  p.add_variable("a", Domain::range(1, 3));
  p.add_variable("b", Domain::range(1, 5));
  auto result = make()->solve(p);
  EXPECT_EQ(result.solutions.size(), 15u);
}

TEST_P(EverySolver, UnsatisfiableGivesEmpty) {
  Problem p;
  p.add_variable("a", Domain::range(1, 3));
  p.add_variable("b", Domain::range(1, 3));
  p.add_constraint(std::make_unique<MinProduct>(100, std::vector<std::string>{"a", "b"}));
  auto result = make()->solve(p);
  EXPECT_EQ(result.solutions.size(), 0u);
}

TEST_P(EverySolver, EmptyDomainGivesEmpty) {
  Problem p;
  p.add_variable("a", Domain{});
  p.add_variable("b", Domain::range(1, 3));
  auto result = make()->solve(p);
  EXPECT_EQ(result.solutions.size(), 0u);
}

TEST_P(EverySolver, SingleVariable) {
  Problem p;
  p.add_variable("a", Domain::range(1, 10));
  p.add_constraint(std::make_unique<MaxSum>(5, std::vector<std::string>{"a"}));
  auto result = make()->solve(p);
  EXPECT_EQ(result.solutions.size(), 5u);
}

TEST_P(EverySolver, ConstantFalseConstraint) {
  Problem p;
  p.add_variable("a", Domain::range(1, 3));
  p.add_constraint(std::make_unique<ConstBool>(false));
  auto result = make()->solve(p);
  EXPECT_EQ(result.solutions.size(), 0u);
}

TEST_P(EverySolver, StringDomains) {
  Problem p;
  p.add_variable("layout", Domain({Value("NHWC"), Value("NCHW")}));
  p.add_variable("vec", Domain::range(1, 4));
  p.add_constraint(std::make_unique<expr::FunctionConstraint>(
      expr::parse("layout == 'NHWC' or vec <= 2")));
  auto result = make()->solve(p);
  EXPECT_EQ(result.solutions.size(), 6u);  // 4 NHWC + 2 NCHW
}

TEST_P(EverySolver, MatchesBruteForceOnMediumProblem) {
  auto build = [] {
    Problem p;
    p.add_variable("a", Domain::range(1, 8));
    p.add_variable("b", Domain::powers(1, 64));
    p.add_variable("c", Domain::range(1, 6));
    p.add_variable("d", Domain::range(1, 5));
    p.add_constraint(
        std::make_unique<MaxProduct>(64, std::vector<std::string>{"a", "b"}));
    p.add_constraint(std::make_unique<MinSum>(4, std::vector<std::string>{"c", "d"}));
    p.add_constraint(std::make_unique<Divisibility>("a", "c"));
    return p;
  };
  Problem ref_p = build();
  auto reference = BruteForce{}.solve(ref_p);
  Problem p = build();
  auto report = validate_against(*make(), p, reference.solutions);
  EXPECT_TRUE(report.matches) << report.solver_name << ": " << report.solver_count
                              << " vs " << report.reference_count;
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, EverySolver, ::testing::Range(0, 6));

// --- Method-specific behaviour ----------------------------------------------

TEST(OptimizedBacktracking, PreprocessingPrunesDomainsBeforeSearch) {
  // x in 1..8, y in 2..4, x*y <= 8: preprocessing removes x > 4 outright.
  auto build = [] {
    Problem p;
    p.add_variable("x", Domain::range(1, 8));
    p.add_variable("y", Domain::range(2, 4));
    p.add_constraint(std::make_unique<MaxProduct>(8, std::vector<std::string>{"x", "y"}));
    return p;
  };
  Problem p1 = build(), p2 = build();
  auto with = OptimizedBacktracking(OptimizedOptions{true, true, true}).solve(p1);
  auto without = OptimizedBacktracking(OptimizedOptions{false, true, true}).solve(p2);
  EXPECT_EQ(with.solutions.size(), without.solutions.size());
  EXPECT_GT(with.stats.prunes, 0u);             // values removed up front
  EXPECT_LT(with.stats.nodes, without.stats.nodes);
}

TEST(OptimizedBacktracking, AblationOptionsStillCorrect) {
  for (bool pre : {false, true}) {
    for (bool sort : {false, true}) {
      for (bool partial : {false, true}) {
        Problem p = small_product_problem();
        OptimizedBacktracking solver(OptimizedOptions{pre, sort, partial});
        EXPECT_EQ(solver.solve(p).solutions.size(), 8u);
      }
    }
  }
}

TEST(OptimizedBacktracking, PartialChecksReduceNodes) {
  auto build = [] {
    Problem p;
    for (int i = 0; i < 4; ++i) {
      p.add_variable("v" + std::to_string(i), Domain::range(1, 10));
    }
    p.add_constraint(std::make_unique<MaxProduct>(
        20, std::vector<std::string>{"v0", "v1", "v2", "v3"}));
    return p;
  };
  Problem p1 = build(), p2 = build();
  auto with = OptimizedBacktracking(OptimizedOptions{false, false, true}).solve(p1);
  auto without = OptimizedBacktracking(OptimizedOptions{false, false, false}).solve(p2);
  EXPECT_EQ(with.solutions.size(), without.solutions.size());
  EXPECT_LT(with.stats.nodes, without.stats.nodes);
}

TEST(ChainOfTreesTest, InterdependenceGroups) {
  Problem p;
  p.add_variable("a", Domain::range(1, 2));
  p.add_variable("b", Domain::range(1, 2));
  p.add_variable("c", Domain::range(1, 2));
  p.add_variable("d", Domain::range(1, 2));
  p.add_constraint(std::make_unique<MaxProduct>(4, std::vector<std::string>{"a", "b"}));
  p.add_constraint(std::make_unique<MaxSum>(4, std::vector<std::string>{"b", "c"}));
  auto groups = ChainOfTrees::interdependence_groups(p);
  // {a,b,c} are transitively interdependent; d is independent.
  ASSERT_EQ(groups.size(), 2u);
  const auto& g0 = groups[0].size() == 3 ? groups[0] : groups[1];
  const auto& g1 = groups[0].size() == 3 ? groups[1] : groups[0];
  EXPECT_EQ(g0.size(), 3u);
  EXPECT_EQ(g1, (std::vector<std::size_t>{3}));
}

TEST(ChainOfTreesTest, AllIndependentVariables) {
  Problem p;
  p.add_variable("a", Domain::range(1, 3));
  p.add_variable("b", Domain::range(1, 4));
  EXPECT_EQ(ChainOfTrees::interdependence_groups(p).size(), 2u);
  auto result = ChainOfTrees{}.solve(p);
  EXPECT_EQ(result.solutions.size(), 12u);
}

TEST(BlockingEnumeratorTest, ClauseChecksGrowQuadratically) {
  Problem p;
  p.add_variable("a", Domain::range(1, 20));
  p.add_variable("b", Domain::range(1, 20));
  auto result = BlockingEnumerator{}.solve(p);
  EXPECT_EQ(result.solutions.size(), 400u);
  // n*(n-1)/2 clause checks on top of regular constraint checks.
  EXPECT_GE(result.stats.constraint_checks, 400u * 399u / 2u);
}

TEST(SolutionSetTest, SameSolutionsIsOrderInsensitive) {
  SolutionSet a(2), b(2);
  std::uint32_t r1[] = {0, 1}, r2[] = {1, 0};
  a.append(r1);
  a.append(r2);
  b.append(r2);
  b.append(r1);
  EXPECT_TRUE(a.same_solutions(b));
  std::uint32_t r3[] = {1, 1};
  b.append(r3);
  EXPECT_FALSE(a.same_solutions(b));
}

TEST(AllSolversRegistry, NamesAndCount) {
  auto solvers = all_solvers(true);
  ASSERT_EQ(solvers.size(), 5u);
  EXPECT_EQ(solvers[0]->name(), "optimized");
  EXPECT_EQ(solvers[4]->name(), "blocking-smt");
}
