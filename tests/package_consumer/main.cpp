// Smoke test for the installed tunespace package: resolve a small space,
// snapshot it, reload it, and verify the round trip — exercising the public
// headers and the library across the install boundary.
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "tunespace/searchspace/io.hpp"
#include "tunespace/searchspace/searchspace.hpp"

using namespace tunespace;

int main() {
  tuner::TuningProblem spec("consumer-smoke");
  spec.add_param("block_size_x", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
      .add_param("block_size_y", {1, 2, 4, 8, 16, 32});
  spec.add_constraint("32 <= block_size_x * block_size_y <= 1024");

  searchspace::SearchSpace fresh(spec);
  const std::string path = "consumer-smoke.tss";
  searchspace::save_snapshot(fresh, path);
  searchspace::SearchSpace loaded = searchspace::load_snapshot(spec, path);
  std::filesystem::remove(path);

  std::ostringstream a, b;
  searchspace::write_csv(fresh, a);
  searchspace::write_csv(loaded, b);
  if (fresh.size() == 0 || a.str() != b.str()) {
    std::fprintf(stderr, "FAIL: snapshot round trip diverged (%zu rows)\n",
                 fresh.size());
    return 1;
  }
  std::printf("tunespace consumer OK: %zu valid configs round-tripped\n",
              fresh.size());
  return 0;
}
