// Edge-case and failure-injection tests across the stack: degenerate
// domains, hostile expressions, raising constraints, and boundary shapes
// the main suites do not exercise.
#include <gtest/gtest.h>

#include "tunespace/csp/builtin_constraints.hpp"
#include "tunespace/expr/compiler.hpp"
#include "tunespace/expr/interpreter.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/searchspace/neighbors.hpp"
#include "tunespace/searchspace/searchspace.hpp"
#include "tunespace/solver/brute_force.hpp"
#include "tunespace/solver/validate.hpp"
#include "tunespace/tuner/pipeline.hpp"

using namespace tunespace;
using csp::Value;

// --- Degenerate domains ------------------------------------------------------

TEST(EdgeDomains, SingleValueParametersEverywhere) {
  tuner::TuningProblem spec("all-fixed");
  spec.add_param("a", {7}).add_param("b", {3}).add_param("c", {2});
  spec.add_constraint("a > b and b > c");
  for (const auto& method : tuner::construction_methods(true)) {
    auto result = tuner::construct(spec, method);
    EXPECT_EQ(result.solutions.size(), 1u) << method.name;
  }
}

TEST(EdgeDomains, SingleValueViolatingConstraint) {
  tuner::TuningProblem spec("fixed-invalid");
  spec.add_param("a", {1}).add_param("b", {2});
  spec.add_constraint("a > b");
  for (const auto& method : tuner::construction_methods(true)) {
    auto result = tuner::construct(spec, method);
    EXPECT_EQ(result.solutions.size(), 0u) << method.name;
  }
}

TEST(EdgeDomains, DuplicateValuesInDomainAreEnumerated) {
  // Domains are value *lists*; a repeated value yields distinct index rows.
  csp::Problem p;
  p.add_variable("x", csp::Domain({Value(2), Value(2), Value(3)}));
  auto result = solver::BruteForce{}.solve(p);
  EXPECT_EQ(result.solutions.size(), 3u);
}

TEST(EdgeDomains, NegativeAndZeroValuesWithProducts) {
  // Product constraints over non-positive domains must stay correct (the
  // monotone fast path is disabled; generic evaluation takes over).
  tuner::TuningProblem spec("negatives");
  spec.add_param("a", {-4, -2, 0, 2, 4}).add_param("b", {-3, -1, 1, 3});
  spec.add_constraint("a * b >= 4");
  auto methods = tuner::construction_methods(false);
  auto opt = tuner::construct(spec, methods[0]);
  auto brute = tuner::construct(spec, methods[3]);
  EXPECT_TRUE(opt.solutions.same_solutions(brute.solutions));
  std::size_t expected = 0;
  for (int a : {-4, -2, 0, 2, 4}) {
    for (int b : {-3, -1, 1, 3}) {
      if (a * b >= 4) ++expected;
    }
  }
  EXPECT_EQ(opt.solutions.size(), expected);
}

// --- Hostile expressions ------------------------------------------------------

TEST(EdgeExpressions, DivisionByZeroParameterInvalidatesConfigs) {
  // b = 0 raises in a / b; those configurations must be invalid, not fatal.
  tuner::TuningProblem spec("divzero");
  spec.add_param("a", {2, 4}).add_param("b", {0, 1, 2});
  spec.add_constraint("a / b >= 2");
  auto methods = tuner::construction_methods(false);
  for (const auto& m : methods) {
    auto result = tuner::construct(spec, m);
    // valid: (2,1), (4,1), (4,2) — b=0 rows all invalid.
    EXPECT_EQ(result.solutions.size(), 3u) << m.name;
  }
}

TEST(EdgeExpressions, StringNumberComparisonInvalidates) {
  tuner::TuningProblem spec("typemix");
  spec.add_param("layout", std::vector<Value>{Value("NHWC"), Value("NCHW")})
      .add_param("w", {1, 2});
  spec.add_constraint("layout < w or w == 2");  // '<' raises; 'or' saves w==2
  auto methods = tuner::construction_methods(false);
  auto result = tuner::construct(spec, methods[0]);
  // Interpreted/compiled 'or' short-circuits left-to-right: the raising
  // branch evaluates first and poisons the whole constraint, so only the
  // raising path matters -> all rows where the lhs raises are invalid.
  // Python would raise too; our semantics map raising to invalid.
  EXPECT_EQ(result.solutions.size(), 0u);
}

TEST(EdgeExpressions, DeepChainAndNesting) {
  const auto ast = expr::parse("1 < 2 < 3 < 4 < 5 < 6 < 7 < 8");
  EXPECT_TRUE(expr::eval_bool(*ast, expr::map_env({})));
  const expr::Program prog = expr::compile(ast);
  EXPECT_TRUE(prog.run_bool(nullptr, nullptr));

  std::string deep = "x";
  for (int i = 0; i < 60; ++i) deep = "(" + deep + " + 1)";
  std::unordered_map<std::string, Value> vars{{"x", Value(0)}};
  EXPECT_EQ(expr::eval(*expr::parse(deep), expr::map_env(vars)), Value(60));
}

TEST(EdgeExpressions, HugeExponentPromotesNotCrashes) {
  std::unordered_map<std::string, Value> vars;
  const Value v = expr::eval(*expr::parse("10 ** 100"), expr::map_env(vars));
  EXPECT_TRUE(v.is_real());
  EXPECT_GT(v.as_real(), 1e99);
}

TEST(EdgeExpressions, WhitespaceAndFormattingRobust) {
  const auto a = expr::parse("  32<=block_size_x*block_size_y  ");
  const auto b = expr::parse("32 <= block_size_x * block_size_y");
  EXPECT_TRUE(a->equals(*b));
}

// --- Constraint layering -------------------------------------------------------

TEST(EdgeConstraints, SameVariableInManyConstraints) {
  tuner::TuningProblem spec("layered");
  spec.add_param("x", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  spec.add_constraint("x % 2 == 0");
  spec.add_constraint("x % 3 == 0");
  spec.add_constraint("x >= 6");
  spec.add_constraint("x <= 12");
  auto methods = tuner::construction_methods(false);
  for (const auto& m : methods) {
    auto result = tuner::construct(spec, m);
    EXPECT_EQ(result.solutions.size(), 2u) << m.name;  // 6 and 12
  }
}

TEST(EdgeConstraints, RedundantDuplicateConstraints) {
  tuner::TuningProblem spec("dupes");
  spec.add_param("a", {1, 2, 3, 4}).add_param("b", {1, 2, 3, 4});
  for (int i = 0; i < 5; ++i) spec.add_constraint("a * b <= 6");
  auto methods = tuner::construction_methods(false);
  auto opt = tuner::construct(spec, methods[0]);
  auto brute = tuner::construct(spec, methods[3]);
  EXPECT_TRUE(opt.solutions.same_solutions(brute.solutions));
}

TEST(EdgeConstraints, ContradictoryConstraintsAcrossGroups) {
  tuner::TuningProblem spec("contradiction");
  spec.add_param("a", {1, 2}).add_param("b", {1, 2}).add_param("c", {1, 2});
  spec.add_constraint("a < b");
  spec.add_constraint("b < a");  // contradiction within the {a,b} group
  for (const auto& m : tuner::construction_methods(true)) {
    EXPECT_EQ(tuner::construct(spec, m).solutions.size(), 0u) << m.name;
  }
}

// --- SearchSpace corners --------------------------------------------------------

TEST(EdgeSearchSpace, SingletonSpaceNeighbors) {
  tuner::TuningProblem spec("singleton");
  spec.add_param("a", {1, 2}).add_param("b", {1, 2});
  spec.add_constraint("a == 2 and b == 2");
  searchspace::SearchSpace space(spec);
  ASSERT_EQ(space.size(), 1u);
  EXPECT_TRUE(searchspace::neighbors_of(space, 0).empty());
  EXPECT_EQ(space.present_values(0).size(), 1u);
}

TEST(EdgeSearchSpace, FullyDenseSpace) {
  tuner::TuningProblem spec("dense");
  spec.add_param("a", {1, 2, 3}).add_param("b", {1, 2, 3});
  searchspace::SearchSpace space(spec);
  EXPECT_EQ(space.size(), 9u);
  EXPECT_DOUBLE_EQ(space.sparsity(), 0.0);
  // Every config has 4 Hamming-1 neighbours (2 per dimension).
  for (std::size_t r = 0; r < space.size(); ++r) {
    EXPECT_EQ(searchspace::neighbors_of(space, r).size(), 4u);
  }
}

// --- Stats sanity on a known search --------------------------------------------

TEST(EdgeStats, NodeCountsAreConsistentAcrossSolvers) {
  tuner::TuningProblem spec("counts");
  spec.add_param("a", {1, 2, 3, 4}).add_param("b", {1, 2, 3, 4});
  spec.add_constraint("a * b <= 8");
  auto problem = tuner::build_problem(spec, tuner::PipelineOptions::compiled_raw());
  auto brute = solver::BruteForce{}.solve(problem);
  // Brute force visits exactly the Cartesian product.
  EXPECT_EQ(brute.stats.nodes, 16u);
  EXPECT_GE(brute.stats.constraint_checks, 16u);
}
