// Tests for the statistics toolkit (regression slopes, KDE, quantiles).
#include <gtest/gtest.h>

#include <cmath>

#include "tunespace/util/rng.hpp"
#include "tunespace/util/stats.hpp"

using namespace tunespace::util;

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 7.0);
  }
  auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_LT(fit.p_value, 1e-6);
}

TEST(Stats, LinearFitNoisy) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(0.5 * i + rng.normal() * 2.0);
  }
  auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.05);
  EXPECT_LT(fit.p_value, 1e-6);
}

TEST(Stats, LinearFitFlatHasHighPValue) {
  Rng rng(4);
  std::vector<double> x, y;
  for (int i = 0; i < 40; ++i) {
    x.push_back(i);
    y.push_back(rng.normal());
  }
  auto fit = linear_fit(x, y);
  EXPECT_GT(fit.p_value, 0.01);
}

TEST(Stats, LogLogFitRecoversPowerLaw) {
  // y = 2 * x^0.86, like the paper's optimized-method scaling (Fig. 3A).
  std::vector<double> x, y;
  for (int i = 1; i <= 60; ++i) {
    const double xv = i * 100.0;
    x.push_back(xv);
    y.push_back(2.0 * std::pow(xv, 0.86));
  }
  auto fit = loglog_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.86, 1e-6);
}

TEST(Stats, LogLogFitIgnoresNonPositive) {
  auto fit = loglog_fit({-1.0, 10.0, 100.0, 1000.0}, {0.0, 1.0, 10.0, 100.0});
  EXPECT_EQ(fit.n, 3u);
  EXPECT_NEAR(fit.slope, 1.0, 1e-9);
}

TEST(Stats, MeanStdDev) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.138, 0.001);
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(stddev({1.0}), 0.0);
}

TEST(Stats, Quantiles) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Stats, SummaryFiveNumbers) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  auto s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_EQ(s.n, 100u);
}

TEST(Stats, KdeIntegratesToOne) {
  Rng rng(8);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.normal());
  auto k = kde(samples, 128);
  ASSERT_EQ(k.grid.size(), 128u);
  double integral = 0;
  for (std::size_t i = 1; i < k.grid.size(); ++i) {
    integral += 0.5 * (k.density[i] + k.density[i - 1]) * (k.grid[i] - k.grid[i - 1]);
  }
  EXPECT_NEAR(integral, 1.0, 0.05);
}

TEST(Stats, KdePeaksNearMode) {
  Rng rng(9);
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(5.0 + rng.normal() * 0.5);
  auto k = kde(samples, 200);
  double best_x = 0, best_d = -1;
  for (std::size_t i = 0; i < k.grid.size(); ++i) {
    if (k.density[i] > best_d) {
      best_d = k.density[i];
      best_x = k.grid[i];
    }
  }
  EXPECT_NEAR(best_x, 5.0, 0.3);
}

TEST(Stats, KdeDegenerateInput) {
  auto k = kde({3.0, 3.0, 3.0}, 16);
  EXPECT_EQ(k.grid.size(), 16u);
  EXPECT_GT(k.bandwidth, 0.0);
}
