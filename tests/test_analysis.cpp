// Tests for scope extraction and constraint decomposition (§4.2),
// including the logical-equivalence property of decompose().
#include <gtest/gtest.h>

#include "tunespace/expr/analysis.hpp"
#include "tunespace/expr/interpreter.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/util/rng.hpp"

using namespace tunespace::expr;
using tunespace::csp::Value;

TEST(Analysis, Variables) {
  EXPECT_EQ(variables(*parse("a * b + a - c")),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(variables(*parse("1 + 2")).empty());
  EXPECT_EQ(variable_count(*parse("x * x * x")), 1u);
}

TEST(Analysis, ConjunctionSplit) {
  auto parts = decompose(parse("a <= 4 and b >= 2 and c == 1"));
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0]->to_string(), "a <= 4");
  EXPECT_EQ(parts[2]->to_string(), "c == 1");
}

TEST(Analysis, ChainSplit) {
  auto parts = decompose(parse("2 <= y <= 32"));
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0]->to_string(), "2 <= y");
  EXPECT_EQ(parts[1]->to_string(), "y <= 32");
}

TEST(Analysis, PaperFigure1Example) {
  // 2 <= block_size_y <= 32 <= block_size_x * block_size_y <= 1024
  auto parts = decompose(parse(
      "2 <= block_size_y <= 32 <= block_size_x * block_size_y <= 1024"));
  ASSERT_EQ(parts.size(), 4u);
  // Each conjunct involves at most 2 variables (the minimal scopes).
  for (const auto& p : parts) EXPECT_LE(variable_count(*p), 2u);
  EXPECT_EQ(parts[0]->to_string(), "2 <= block_size_y");
  EXPECT_EQ(parts[3]->to_string(), "(block_size_x * block_size_y) <= 1024");
}

TEST(Analysis, NestedConjunctionsFlatten) {
  auto parts = decompose(parse("(a <= 1 and b <= 2) and (c <= 3 and 1 <= d <= 5)"));
  EXPECT_EQ(parts.size(), 5u);
}

TEST(Analysis, DisjunctionNotSplit) {
  auto parts = decompose(parse("a <= 1 or b <= 2"));
  EXPECT_EQ(parts.size(), 1u);
}

TEST(Analysis, NegationNotSplit) {
  auto parts = decompose(parse("not (a <= 1 and b <= 2)"));
  EXPECT_EQ(parts.size(), 1u);
}

TEST(Analysis, SharedSubtreeIsReused) {
  // Chain splitting shares the middle operand node.
  AstPtr chain = parse("a <= b * c <= d");
  auto parts = decompose(chain);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0]->children[1].get(), parts[1]->children[0].get());
}

// Property: the conjunction of the decomposed parts is logically equivalent
// to the original expression, on random assignments.
class DecomposeEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(DecomposeEquivalence, ConjunctionMatchesOriginal) {
  const AstPtr original = parse(GetParam());
  const auto parts = decompose(original);
  tunespace::util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::unordered_map<std::string, Value> vars;
    for (const auto& name : variables(*original)) {
      vars[name] = Value(rng.uniform_int(0, 40));
    }
    const bool expected = eval_bool(*original, map_env(vars));
    bool all = true;
    for (const auto& p : parts) {
      if (!eval_bool(*p, map_env(vars))) {
        all = false;
        break;
      }
    }
    EXPECT_EQ(expected, all) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, DecomposeEquivalence,
    ::testing::Values(
        "2 <= y <= 32 <= x * y <= 1024",
        "a <= b and b <= c and 1 <= d <= 9",
        "a * b >= 4 and (c <= 5 or d >= 2)",
        "x % 2 == 0 and 3 <= x + y <= 50",
        "a < b < c < d",
        "a + b <= 30 and not (c > 20)",
        "min(a, b) <= 10 and max(c, d) >= 2"));
