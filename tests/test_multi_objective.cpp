// Tests for the multi-objective measurement API: ObjectiveSpec semantics
// (scalarization, masking, dominance, fingerprints), the PowerModel
// surfaces, bit-identical two-objective replays across every driver
// (closed loop, manual ask/tell stepper, SessionManager, in-process
// service, v2 wire), the best_at contract for scalar and vector runs, and
// protocol version negotiation (v1 client vs v2 server, v2 client vs v1
// server, typed rejection of unknown versions).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tunespace/tuner/net.hpp"
#include "tunespace/tuner/protocol.hpp"
#include "tunespace/tuner/server.hpp"
#include "tunespace/tuner/service.hpp"
#include "tunespace/tuner/service_client.hpp"
#include "tunespace/tuner/session.hpp"

using namespace tunespace;
namespace json = util::json;
namespace wire = tuner::wire;

namespace {

ErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ServiceError& e) {
    return e.code();
  }
  return ErrorCode::kOk;
}

tuner::TuningProblem small_spec() {
  tuner::TuningProblem spec("small");
  spec.add_param("block_size_x", {8, 16, 32, 64, 128})
      .add_param("block_size_y", {1, 2, 4, 8})
      .add_param("sh_power", {0, 1});
  spec.add_constraint("32 <= block_size_x * block_size_y <= 512");
  return spec;
}

/// Two-objective options: maximize throughput, minimize power (the
/// perf-per-watt recipe), with a fixed construction charge so replays are
/// bit-reproducible.
tuner::TuningOptions vector_options(std::uint64_t seed, double budget = 60.0) {
  tuner::TuningOptions options;
  options.budget_seconds = budget;
  options.seed = seed;
  options.fixed_construction_seconds = 2.0;
  options.objectives = tuner::ObjectiveSpec::perf_and_power(1.0, 0.05);
  return options;
}

tuner::SessionStepper::CostFn cost_of(const tuner::PerformanceModel& model) {
  return [&model](const tuner::Measurement& m) {
    return model.evaluation_cost(m.gflops);
  };
}

/// Project a TuningRun onto the wire RunSummary shape for comparison with
/// service/wire results.
tuner::RunSummary summarize(const tuner::TuningRun& run) {
  tuner::RunSummary summary;
  summary.method_name = run.method_name;
  summary.construction_seconds = run.construction_seconds;
  summary.budget_seconds = run.budget_seconds;
  summary.best_gflops = run.best_gflops;
  summary.evaluations = run.evaluations;
  for (const auto& point : run.trajectory) {
    summary.trajectory.push_back({point.time_seconds, point.best_gflops,
                                  static_cast<std::uint64_t>(point.evaluations),
                                  point.measurement});
  }
  summary.objectives = run.objectives;
  summary.best_score = run.best_score;
  summary.best = run.best;
  summary.front = run.front;
  return summary;
}

}  // namespace

// --- ObjectiveSpec ----------------------------------------------------------

TEST(ObjectiveSpec, SingleScalarizesToExactlyGflops) {
  const auto spec = tuner::ObjectiveSpec::single();
  EXPECT_TRUE(spec.is_single());
  EXPECT_TRUE(tuner::ObjectiveSpec{}.is_single());
  // Bit-exact, not approximately: this identity is what keeps legacy scalar
  // sessions byte-identical through the vector API.
  const tuner::Measurement m{123.4567891234, 87.5};
  EXPECT_EQ(spec.scalarize(m), 123.4567891234);
  // Unnamed components are masked to zero before entering session state.
  EXPECT_EQ(spec.mask(m), (tuner::Measurement{123.4567891234, 0.0}));
}

TEST(ObjectiveSpec, PerfAndPowerScalarizesWeightedDirections) {
  const auto spec = tuner::ObjectiveSpec::perf_and_power(1.0, 0.25);
  EXPECT_FALSE(spec.is_single());
  EXPECT_EQ(spec.size(), 2u);
  const tuner::Measurement m{100.0, 40.0};
  // Minimized objectives contribute negatively.
  EXPECT_EQ(spec.scalarize(m), 100.0 - 0.25 * 40.0);
  EXPECT_EQ(spec.mask(m), m);  // both components are named: nothing masked
}

TEST(ObjectiveSpec, DominanceFollowsDirections) {
  const auto spec = tuner::ObjectiveSpec::perf_and_power();
  const tuner::Measurement fast_hot{100.0, 50.0};
  const tuner::Measurement fast_cool{100.0, 30.0};
  const tuner::Measurement slow_cool{60.0, 30.0};
  EXPECT_TRUE(spec.dominates(fast_cool, fast_hot));   // same perf, less power
  EXPECT_TRUE(spec.dominates(fast_cool, slow_cool));  // same power, more perf
  EXPECT_FALSE(spec.dominates(fast_hot, slow_cool));  // trade: incomparable
  EXPECT_FALSE(spec.dominates(slow_cool, fast_hot));
  EXPECT_FALSE(spec.dominates(fast_cool, fast_cool));  // strict
  EXPECT_TRUE(spec.dominates_or_equal(fast_cool, fast_cool));
}

TEST(ObjectiveSpec, FingerprintSeparatesObjectiveSets) {
  const auto single = tuner::ObjectiveSpec::single();
  const auto both = tuner::ObjectiveSpec::perf_and_power();
  const auto reweighted = tuner::ObjectiveSpec::perf_and_power(1.0, 0.5);
  EXPECT_NE(single.fingerprint(), both.fingerprint());
  EXPECT_NE(both.fingerprint(), reweighted.fingerprint());
  EXPECT_EQ(single.fingerprint(), tuner::ObjectiveSpec{}.fingerprint());
}

// --- PowerModel surfaces ----------------------------------------------------

TEST(PowerModels, MeasureFillsWattsDeterministically) {
  const auto spec = small_spec();
  const searchspace::SearchSpace space(spec);
  ASSERT_GT(space.size(), 0u);
  std::vector<std::string> names;
  for (const auto& param : spec.params()) names.push_back(param.name);
  const auto config = space.config(0);

  tuner::HotspotModel hotspot;
  tuner::GemmModel gemm;
  tuner::SyntheticModel synthetic(17);
  for (const tuner::PerformanceModel* model :
       {static_cast<const tuner::PerformanceModel*>(&hotspot),
        static_cast<const tuner::PerformanceModel*>(&gemm),
        static_cast<const tuner::PerformanceModel*>(&synthetic)}) {
    const auto first = model->measure(names, config);
    const auto second = model->measure(names, config);
    EXPECT_EQ(first, second) << model->name();  // deterministic, bit-exact
    EXPECT_EQ(first.gflops, model->gflops(names, config)) << model->name();
    EXPECT_GT(first.watts, 0.0) << model->name();
  }
  // Fingerprints separate the surfaces (and thereby their cache entries).
  EXPECT_NE(hotspot.fingerprint(), gemm.fingerprint());
  EXPECT_NE(hotspot.fingerprint(), synthetic.fingerprint());
}

// --- Two-objective replays are bit-identical across every driver ------------

TEST(MultiObjective, ClosedLoopStepperAndManagerAgreeBitForBit) {
  const auto spec = small_spec();
  tuner::HotspotModel model;
  const auto options = vector_options(11);

  // Closed loop from the spec.
  tuner::RandomSearch loop_opt;
  const tuner::Method method = tuner::optimized_method();
  const auto loop = tuner::run_session(
      tuner::make_session_request(spec, method, model, loop_opt, options));
  ASSERT_GT(loop.evaluations, 0u);
  EXPECT_FALSE(loop.objectives.is_single());

  // Manual ask/tell over a pre-resolved space, answering with the full
  // measurement vector.
  const searchspace::SearchSpace space(spec);
  tuner::RandomSearch step_opt;
  tuner::SessionStepper stepper(space, "optimized",
                                space.construction_seconds(), step_opt,
                                options, cost_of(model));
  while (auto ask = stepper.suggest()) {
    stepper.report(model.measure(stepper.param_names(), ask->config));
  }
  ASSERT_TRUE(stepper.finished());
  EXPECT_EQ(stepper.take_run(), loop);

  // The same session under a SessionManager.
  std::vector<tuner::SessionRequest> requests(1);
  requests[0].spec = spec;
  requests[0].model = std::make_shared<tuner::HotspotModel>();
  requests[0].make_optimizer = [] {
    return std::make_unique<tuner::RandomSearch>();
  };
  requests[0].options = options;
  tuner::SessionManager manager;
  const auto managed = manager.run_all(std::move(requests));
  ASSERT_EQ(managed.size(), 1u);
  EXPECT_EQ(managed[0].run, loop);
}

TEST(MultiObjective, ServiceAndV2WireReplayTheClosedLoopBitForBit) {
  // Reference: the catalog hotspot kernel through the plain closed loop.
  const auto* kernel = tuner::find_service_kernel("hotspot");
  ASSERT_NE(kernel, nullptr);
  tuner::TuningOptions options = vector_options(3, 20.0);
  auto optimizer = tuner::make_optimizer("random-sampling");
  const tuner::Method method = tuner::optimized_method();
  const auto reference = summarize(tuner::run_session(tuner::make_session_request(
      kernel->spec, method, *kernel->model, *optimizer, options)));
  ASSERT_GT(reference.evaluations, 0u);
  ASSERT_FALSE(reference.front.empty());

  tuner::OpenSessionRequest open;
  open.kernel = "hotspot";
  open.seed = 3;
  open.budget_seconds = 20.0;
  open.fixed_construction_seconds = options.fixed_construction_seconds;
  open.objectives = options.objectives;

  // In-process service.
  tuner::RunSummary in_process;
  {
    tuner::TuningService service;
    const auto opened = service.open(open);
    EXPECT_EQ(opened.info.objectives, options.objectives);
    while (true) {
      const auto ask = service.suggest({opened.session_id});
      if (ask.finished) break;
      csp::Config config;
      for (const auto& entry : ask.config) config.push_back(entry.value);
      tuner::ReportRequest report;
      report.session_id = opened.session_id;
      report.measurement =
          kernel->model->measure(opened.info.param_names, config);
      report.gflops = report.measurement.gflops;
      service.report(report);
    }
    in_process = service.close({opened.session_id}).run;
  }
  EXPECT_EQ(in_process, reference);

  // The same session over the v2 wire (objective maps in both directions).
  tuner::TuningService service;
  tuner::ServiceServerOptions server_options;
  server_options.port = 0;
  tuner::ServiceServer server(service, server_options);
  server.start();
  tuner::ServiceClientOptions client_options;
  client_options.port = server.port();
  tuner::ServiceClient client(client_options);
  EXPECT_EQ(client.negotiated_version(), wire::kProtocolVersion);

  const auto opened = client.open(open);
  EXPECT_EQ(opened.info.objectives, options.objectives);
  while (true) {
    const auto ask = client.suggest(opened.session_id);
    if (ask.finished) break;
    csp::Config config;
    for (const auto& entry : ask.config) config.push_back(entry.value);
    tuner::ReportRequest report;
    report.session_id = opened.session_id;
    report.measurement = kernel->model->measure(opened.info.param_names, config);
    report.gflops = report.measurement.gflops;
    client.report(report);
  }
  const auto over_wire = client.close_session(opened.session_id).run;
  server.stop();
  EXPECT_EQ(over_wire, reference);
}

TEST(MultiObjective, ScalarSessionsKeepTheLegacyShape) {
  // A default-objective session through the vector-first stack: every
  // derived scalar must coincide with the measured gflops bit-for-bit.
  tuner::RandomSearch rs;
  tuner::HotspotModel model;
  tuner::TuningOptions options;
  options.budget_seconds = 60.0;
  options.seed = 5;
  options.fixed_construction_seconds = 2.0;
  const tuner::Method method = tuner::optimized_method();
  const auto run = tuner::run_session(
      tuner::make_session_request(small_spec(), method, model, rs, options));
  ASSERT_GT(run.evaluations, 0u);
  EXPECT_TRUE(run.objectives.is_single());
  EXPECT_EQ(run.best_score, run.best_gflops);
  EXPECT_EQ(run.best, (tuner::Measurement{run.best_gflops, 0.0}));
  for (const auto& point : run.trajectory) {
    EXPECT_EQ(point.measurement.gflops, point.best_gflops);
    EXPECT_EQ(point.measurement.watts, 0.0);  // unmeasured, masked
  }
  // A scalar front degenerates to the incumbent.
  ASSERT_EQ(run.front.size(), 1u);
  EXPECT_EQ(run.front[0].measurement, run.best);
}

TEST(MultiObjective, ParetoFrontIsNonDominatedAndCanonicallyOrdered) {
  tuner::RandomSearch rs;
  tuner::HotspotModel model;
  const tuner::Method method = tuner::optimized_method();
  const auto run = tuner::run_session(tuner::make_session_request(
      small_spec(), method, model, rs, vector_options(29, 120.0)));
  ASSERT_GT(run.front.size(), 1u) << "power landscape should force trades";

  // No front member dominates another.
  for (const auto& a : run.front) {
    for (const auto& b : run.front) {
      EXPECT_FALSE(run.objectives.dominates(a.measurement, b.measurement));
    }
  }
  // The canonical view is sorted by descending scalarized score, ties by
  // ascending row, and contains the scalar incumbent first.
  const auto sorted = run.pareto();
  ASSERT_EQ(sorted.size(), run.front.size());
  EXPECT_EQ(run.objectives.scalarize(sorted.front().measurement),
            run.best_score);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const double prev = run.objectives.scalarize(sorted[i - 1].measurement);
    const double cur = run.objectives.scalarize(sorted[i].measurement);
    EXPECT_GE(prev, cur);
    if (prev == cur) {
      EXPECT_LT(sorted[i - 1].row, sorted[i].row);
    }
  }
}

// --- best_at contract (scalar and vector) -----------------------------------

TEST(BestAt, ExactTimestampIsIncludedAndPreHistoryIsZero) {
  tuner::TuningRun run;
  run.trajectory = {{10.0, 100.0, 1, {100.0, 0.0}},
                    {20.0, 150.0, 2, {150.0, 0.0}}};
  // Before the first improvement — including negative time — the answer is 0.
  EXPECT_EQ(run.best_at(-1.0), 0.0);
  EXPECT_EQ(run.best_at(0.0), 0.0);
  EXPECT_EQ(run.best_at(9.999999), 0.0);
  // A point exactly at `time` IS included: the improvement happens at that
  // instant.
  EXPECT_EQ(run.best_at(10.0), 100.0);
  EXPECT_EQ(run.best_at(20.0), 150.0);
  EXPECT_EQ(run.best_at(1e9), 150.0);
}

TEST(BestAt, VectorRunsReportTheScalarizedIncumbentsThroughput) {
  // A two-objective run where a later incumbent trades gflops for power:
  // best_at follows the *scalarized* incumbent, so the reported throughput
  // may drop when another objective paid for the trade.
  tuner::TuningRun run;
  run.objectives = tuner::ObjectiveSpec::perf_and_power(1.0, 1.0);
  // score 100-60=40, then score 90-30=60: the second point wins on score
  // with lower gflops.
  run.trajectory = {{5.0, 100.0, 1, {100.0, 60.0}},
                    {15.0, 90.0, 2, {90.0, 30.0}}};
  EXPECT_EQ(run.best_at(4.0), 0.0);
  EXPECT_EQ(run.best_at(5.0), 100.0);
  EXPECT_EQ(run.best_at(15.0), 90.0);  // incumbent's throughput, not max
  EXPECT_EQ(run.best_at(16.0), 90.0);
}

// --- Version negotiation ----------------------------------------------------

TEST(Negotiation, HelloCodecsRoundTrip) {
  const wire::HelloRequest request{wire::kProtocolVersion};
  EXPECT_EQ(wire::hello_request_from_json(wire::to_json(request)), request);
  const wire::HelloResponse response{2, wire::kProtocolVersion};
  EXPECT_EQ(wire::hello_response_from_json(wire::to_json(response)), response);
}

TEST(Negotiation, ForcedV1ClientWorksAgainstAV2Server) {
  // A pinned-v1 client emits pure v1 envelopes (scalar gflops reports, no
  // objective fields); the v2 server must treat them as a single-objective
  // session — the PR-7 contract.
  const auto* kernel = tuner::find_service_kernel("gemm");
  ASSERT_NE(kernel, nullptr);

  tuner::OpenSessionRequest open;
  open.kernel = "gemm";
  open.seed = 5;
  open.budget_seconds = 2.0;
  open.fixed_construction_seconds = 0.5;

  // Reference: the same session in-process.
  tuner::RunSummary reference;
  {
    tuner::TuningService local;
    const auto opened = local.open(open);
    while (true) {
      const auto ask = local.suggest({opened.session_id});
      if (ask.finished) break;
      csp::Config config;
      for (const auto& entry : ask.config) config.push_back(entry.value);
      local.report({opened.session_id,
                    kernel->model->gflops(opened.info.param_names, config),
                    -1.0});
    }
    reference = local.close({opened.session_id}).run;
  }

  tuner::TuningService service;
  tuner::ServiceServerOptions server_options;
  server_options.port = 0;
  tuner::ServiceServer server(service, server_options);
  server.start();
  tuner::ServiceClientOptions client_options;
  client_options.port = server.port();
  client_options.force_version = 1;
  tuner::ServiceClient client(client_options);
  EXPECT_EQ(client.negotiated_version(), 1);

  const auto opened = client.open(open);
  EXPECT_TRUE(opened.info.objectives.is_single());
  while (true) {
    const auto ask = client.suggest(opened.session_id);
    if (ask.finished) break;
    csp::Config config;
    for (const auto& entry : ask.config) config.push_back(entry.value);
    client.report({opened.session_id,
                   kernel->model->gflops(opened.info.param_names, config),
                   -1.0});
  }
  const auto over_wire = client.close_session(opened.session_id).run;
  server.stop();
  EXPECT_EQ(over_wire, reference);
  EXPECT_TRUE(over_wire.objectives.is_single());
}

TEST(Negotiation, VersionsAboveTheServersAreRejectedTyped) {
  tuner::TuningService service;
  tuner::ServiceServerOptions server_options;
  server_options.port = 0;
  tuner::ServiceServer server(service, server_options);
  server.start();

  tuner::ServiceClientOptions client_options;
  client_options.port = server.port();
  client_options.force_version = wire::kProtocolVersion + 1;
  tuner::ServiceClient client(client_options);

  tuner::OpenSessionRequest open;
  open.kernel = "gemm";
  EXPECT_EQ(code_of([&] { client.open(open); }),
            ErrorCode::kUnsupportedVersion);
  // The connection survives the rejection: repinning to a spoken version
  // works.
  client_options.force_version = wire::kProtocolVersion;
  client.connect(client_options);
  EXPECT_TRUE(client.ping());
  server.stop();
}

TEST(Negotiation, ClientFallsBackToV1WhenTheServerLacksHello) {
  // A scripted "v1 server": answers hello with kProtocol (unknown op), then
  // serves a ping.  The client must degrade to version 1 and its envelopes
  // must be byte-for-byte v1 — in particular, no "v" stamp.
  const int listen_fd = tuner::net::listen_tcp("127.0.0.1", 0);
  const std::uint16_t port = tuner::net::local_port(listen_fd);
  std::string hello_op;
  std::string ping_payload;
  std::thread v1_server([&] {
    const int fd = tuner::net::accept_timeout(listen_fd, 10000);
    if (fd < 0) return;
    tuner::net::FdStream stream(fd);
    if (auto frame = wire::read_frame(stream)) {
      hello_op = wire::decode_request(*frame).first;
      wire::write_frame(
          stream, wire::encode_error(ErrorCode::kProtocol, "unknown op"));
    }
    if (auto frame = wire::read_frame(stream)) {
      ping_payload = *frame;
      json::Value body = json::Value::object();
      body.set("pong", true);
      wire::write_frame(stream, wire::encode_ok(body));
    }
    tuner::net::close_fd(fd);
  });

  tuner::ServiceClientOptions options;
  options.port = port;
  tuner::ServiceClient client(options);
  EXPECT_EQ(client.negotiated_version(), 1);
  EXPECT_TRUE(client.ping());
  client.disconnect();
  v1_server.join();
  tuner::net::close_fd(listen_fd);

  EXPECT_EQ(hello_op, "hello");
  EXPECT_NE(ping_payload, "");
  EXPECT_EQ(ping_payload.find("\"v\""), std::string::npos)
      << "v1 envelopes must not carry a version stamp: " << ping_payload;
}
