// Determinism + equivalence suite for the work-stealing parallel engines.
//
// For randomized (seed-deterministic) synthetic problems and hand-built
// multi-group problems, the sequential, 1-thread and N-thread constructions
// of both engines (backtracking and chain-of-trees) must produce the
// identical solution ORDER (not just set) and identical SolveStats
// node/check totals — the parallel decomposition only re-distributes work,
// it never changes what work is done.
#include <gtest/gtest.h>

#include "tunespace/csp/builtin_constraints.hpp"
#include "tunespace/solver/chain_of_trees.hpp"
#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/expr/function_constraint.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/solver/parallel_backtracking.hpp"
#include "tunespace/spaces/synthetic.hpp"
#include "tunespace/tuner/pipeline.hpp"

using namespace tunespace;
using namespace tunespace::solver;

namespace {

/// Byte-level equality of two solution sets including enumeration order.
void expect_identical(const SolutionSet& a, const SolutionSet& b,
                      const std::string& what) {
  ASSERT_EQ(a.num_vars(), b.num_vars()) << what;
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t v = 0; v < a.num_vars(); ++v) {
    EXPECT_EQ(a.column(v), b.column(v)) << what << " column " << v;
  }
}

void expect_same_effort(const SolveStats& a, const SolveStats& b,
                        const std::string& what) {
  EXPECT_EQ(a.nodes, b.nodes) << what;
  EXPECT_EQ(a.constraint_checks, b.constraint_checks) << what;
  EXPECT_EQ(a.fast_checks, b.fast_checks) << what;
  EXPECT_EQ(a.prunes, b.prunes) << what;
}

csp::Problem synthetic_problem(std::size_t dims, std::uint64_t target,
                               std::size_t constraints, std::uint64_t seed) {
  const auto space = spaces::make_synthetic(dims, target, constraints, seed);
  return tuner::build_problem(space.spec, tuner::PipelineOptions::optimized());
}

/// Three interdependence groups (pairs), so the chain-of-trees path
/// exercises cross-group tree tasks and the chunked product linking.
csp::Problem multi_group_problem() {
  csp::Problem p;
  for (int g = 0; g < 3; ++g) {
    const std::string a = "a" + std::to_string(g);
    const std::string b = "b" + std::to_string(g);
    p.add_variable(a, csp::Domain::range(1, 6));
    p.add_variable(b, csp::Domain::range(1, 6));
    p.add_constraint(std::make_unique<csp::MaxProduct>(
        12 + g, std::vector<std::string>{a, b}));
  }
  return p;
}

}  // namespace

// --- Backtracking engine ------------------------------------------------------

class ParallelEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelEquivalence, BacktrackingIdenticalOrderAndEffort) {
  const std::uint64_t seed = GetParam();
  auto build = [&] { return synthetic_problem(4, 60000, 1 + seed % 5, seed); };

  csp::Problem p_seq = build();
  const auto sequential = OptimizedBacktracking{}.solve(p_seq);
  ASSERT_GT(sequential.solutions.size(), 0u);

  for (std::size_t threads : {1u, 4u, 8u}) {
    csp::Problem p_par = build();
    const auto parallel = ParallelBacktracking(threads).solve(p_par);
    const std::string what =
        "seed " + std::to_string(seed) + " threads " + std::to_string(threads);
    expect_identical(parallel.solutions, sequential.solutions, what);
    expect_same_effort(parallel.stats, sequential.stats, what);
    EXPECT_GE(parallel.stats.parallel_workers, 1u) << what;
    EXPECT_GE(parallel.stats.parallel_tasks, 1u) << what;
  }
}

TEST_P(ParallelEquivalence, SplitDepthAndStealPolicyDoNotChangeResults) {
  const std::uint64_t seed = GetParam();
  auto build = [&] { return synthetic_problem(4, 40000, 2, seed); };

  csp::Problem p_seq = build();
  const auto sequential = OptimizedBacktracking{}.solve(p_seq);

  for (std::size_t split_depth : {0u, 1u, 2u, 3u, 100u}) {  // 100 -> clamped
    for (StealPolicy steal : {StealPolicy::kSequential, StealPolicy::kRandom}) {
      SolverOptions options;
      options.threads = 4;
      options.split_depth = split_depth;
      options.steal = steal;
      csp::Problem p_par = build();
      const auto parallel = ParallelBacktracking(options).solve(p_par);
      const std::string what = "seed " + std::to_string(seed) + " depth " +
                               std::to_string(split_depth);
      expect_identical(parallel.solutions, sequential.solutions, what);
      expect_same_effort(parallel.stats, sequential.stats, what);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomizedProblems, ParallelEquivalence,
                         ::testing::Values(3u, 17u, 42u, 2025u));

// Regression for the old `workers = min(workers, first_domain)` clamp: a
// first search variable with only 2 values must no longer cap the engine at
// 2 workers — prefix splitting exposes the fan-out of deeper levels.
TEST(ParallelBacktrackingSplit, TinyFirstDomainStillUsesManyWorkers) {
  auto build = [] {
    csp::Problem p;
    // Most-constrained-first ordering puts `x` (2 values, 1 constraint)
    // at search position 0.
    p.add_variable("x", csp::Domain::range(1, 2));
    p.add_variable("y", csp::Domain::range(1, 50));
    p.add_variable("z", csp::Domain::range(1, 50));
    p.add_constraint(std::make_unique<csp::MaxSum>(
        51, std::vector<std::string>{"x", "y"}));
    return p;
  };
  csp::Problem p_seq = build();
  const auto sequential = OptimizedBacktracking{}.solve(p_seq);

  csp::Problem p_par = build();
  const auto parallel = ParallelBacktracking(8).solve(p_par);
  expect_identical(parallel.solutions, sequential.solutions, "tiny first domain");
  expect_same_effort(parallel.stats, sequential.stats, "tiny first domain");
  EXPECT_GT(parallel.stats.parallel_workers, 2u);
  EXPECT_GT(parallel.stats.parallel_tasks, 2u);
}

// Deepening regression: a first search variable whose *valid* fan-out is
// tiny (64 domain values, but constraints leave only 2 expandable prefixes)
// must not cap the engine at 2 workers either — the auto split deepens past
// pruned levels until enough valid prefixes exist.
TEST(ParallelBacktrackingSplit, HeavilyPrunedFirstLevelStillSplits) {
  auto build = [] {
    csp::Problem p;
    p.add_variable("x", csp::Domain::range(1, 64));
    p.add_variable("y", csp::Domain::range(1, 50));
    p.add_variable("z", csp::Domain::range(1, 10));
    p.add_constraint(std::make_unique<expr::FunctionConstraint>(
        expr::parse("x <= 2")));
    return p;
  };
  // Preprocessing off keeps x's stored domain at 64 values, so the valid
  // fan-out only becomes visible during expansion — the hard case.
  const OptimizedOptions no_preprocess{false, true, true, true};
  csp::Problem p_seq = build();
  const auto sequential = OptimizedBacktracking(no_preprocess).solve(p_seq);

  SolverOptions options;
  options.threads = 8;
  csp::Problem p_par = build();
  const auto parallel = ParallelBacktracking(options, no_preprocess).solve(p_par);
  expect_identical(parallel.solutions, sequential.solutions, "pruned first level");
  expect_same_effort(parallel.stats, sequential.stats, "pruned first level");
  EXPECT_EQ(parallel.stats.parallel_workers, 8u);
  EXPECT_GT(parallel.stats.parallel_tasks, 2u);
}

TEST(ParallelBacktrackingSplit, SingleVariableProblem) {
  csp::Problem p;
  p.add_variable("x", csp::Domain::range(1, 10));
  const auto result = ParallelBacktracking(8).solve(p);
  EXPECT_EQ(result.solutions.size(), 10u);
  EXPECT_EQ(result.stats.parallel_workers, 1u);
}

// --- Chain-of-trees engine ----------------------------------------------------

class ChainOfTreesParallel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainOfTreesParallel, IdenticalOrderAndEffort) {
  const std::uint64_t seed = GetParam();
  auto build = [&] { return synthetic_problem(3, 30000, 1 + seed % 3, seed); };

  csp::Problem p_seq = build();
  const auto sequential = ChainOfTrees{}.solve(p_seq);
  ASSERT_GT(sequential.solutions.size(), 0u);

  for (std::size_t threads : {1u, 4u, 8u}) {
    SolverOptions options;
    options.threads = threads;
    csp::Problem p_par = build();
    const auto parallel = ChainOfTrees{}.set_parallel(options).solve(p_par);
    const std::string what =
        "seed " + std::to_string(seed) + " threads " + std::to_string(threads);
    expect_identical(parallel.solutions, sequential.solutions, what);
    expect_same_effort(parallel.stats, sequential.stats, what);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomizedProblems, ChainOfTreesParallel,
                         ::testing::Values(5u, 23u, 99u));

TEST(ChainOfTreesParallelTest, MultiGroupProductIsIdentical) {
  csp::Problem p_seq = multi_group_problem();
  const auto sequential = ChainOfTrees{}.solve(p_seq);
  ASSERT_GT(sequential.solutions.size(), 0u);

  for (StealPolicy steal : {StealPolicy::kSequential, StealPolicy::kRandom}) {
    SolverOptions options;
    options.threads = 8;
    options.steal = steal;
    csp::Problem p_par = multi_group_problem();
    const auto parallel = ChainOfTrees{}.set_parallel(options).solve(p_par);
    expect_identical(parallel.solutions, sequential.solutions, "multi-group");
    expect_same_effort(parallel.stats, sequential.stats, "multi-group");
    EXPECT_GE(parallel.stats.parallel_tasks, 3u);  // >= one per group subtree
  }
}

TEST(ChainOfTreesParallelTest, PyAtfModeStaysSequential) {
  // Interpreter-overhead mode models a Python data flow that cannot be
  // parallelized; set_parallel must be a no-op there, not a crash.
  csp::Problem p_seq = multi_group_problem();
  const auto sequential = ChainOfTrees("pyATF").solve(p_seq);
  SolverOptions options;
  options.threads = 8;
  csp::Problem p_par = multi_group_problem();
  const auto parallel = ChainOfTrees("pyATF").set_parallel(options).solve(p_par);
  expect_identical(parallel.solutions, sequential.solutions, "pyATF");
  expect_same_effort(parallel.stats, sequential.stats, "pyATF");
  EXPECT_EQ(parallel.stats.parallel_workers, 0u);
}

// --- SolutionSet sharding primitives ------------------------------------------

TEST(SolutionSetRange, AppendRangeStitchesSegments) {
  SolutionSet shard(2);
  for (std::uint32_t i = 0; i < 6; ++i) {
    std::uint32_t row[] = {i, i + 10};
    shard.append(row);
  }
  SolutionSet merged(2);
  merged.append_range(shard, 4, 2);  // rows 4,5
  merged.append_range(shard, 0, 2);  // rows 0,1
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged.index_row(0), (std::vector<std::uint32_t>{4, 14}));
  EXPECT_EQ(merged.index_row(3), (std::vector<std::uint32_t>{1, 11}));
}
