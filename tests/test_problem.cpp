// Tests for csp::Problem bookkeeping.
#include <gtest/gtest.h>

#include "tunespace/csp/builtin_constraints.hpp"
#include "tunespace/csp/problem.hpp"

using namespace tunespace::csp;

namespace {
Problem two_var_problem() {
  Problem p;
  p.add_variable("x", Domain::range(1, 4));
  p.add_variable("y", Domain::range(1, 4));
  p.add_constraint(std::make_unique<MaxProduct>(8, std::vector<std::string>{"x", "y"}));
  return p;
}
}  // namespace

TEST(Problem, VariableRegistration) {
  Problem p = two_var_problem();
  EXPECT_EQ(p.num_variables(), 2u);
  EXPECT_EQ(p.index_of("x"), 0u);
  EXPECT_EQ(p.index_of("y"), 1u);
  EXPECT_TRUE(p.has_variable("x"));
  EXPECT_FALSE(p.has_variable("z"));
  EXPECT_THROW(p.index_of("z"), std::out_of_range);
}

TEST(Problem, DuplicateVariableRejected) {
  Problem p;
  p.add_variable("x", Domain::range(1, 2));
  EXPECT_THROW(p.add_variable("x", Domain::range(1, 2)), std::invalid_argument);
}

TEST(Problem, ConstraintBinding) {
  Problem p = two_var_problem();
  ASSERT_EQ(p.constraints().size(), 1u);
  EXPECT_EQ(p.constraints()[0]->indices(),
            (std::vector<std::uint32_t>{0, 1}));
}

TEST(Problem, UnknownScopeVariableRejected) {
  Problem p;
  p.add_variable("x", Domain::range(1, 2));
  EXPECT_THROW(p.add_constraint(std::make_unique<MaxProduct>(
                   8, std::vector<std::string>{"x", "nope"})),
               std::out_of_range);
}

TEST(Problem, ConstraintCounts) {
  Problem p = two_var_problem();
  p.add_variable("z", Domain::range(1, 3));
  p.add_constraint(std::make_unique<MaxSum>(5, std::vector<std::string>{"x", "z"}));
  const auto counts = p.constraint_counts();
  EXPECT_EQ(counts[0], 2u);  // x in both
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(Problem, CartesianSize) {
  Problem p = two_var_problem();
  EXPECT_EQ(p.cartesian_size(), 16u);
}

TEST(Problem, CartesianSizeSaturates) {
  Problem p;
  for (int i = 0; i < 10; ++i) {
    p.add_variable("v" + std::to_string(i), Domain::range(1, 100000));
  }
  EXPECT_EQ(p.cartesian_size(), std::numeric_limits<std::uint64_t>::max());
}

TEST(Problem, EmptyDomainGivesZeroCartesian) {
  Problem p;
  p.add_variable("x", Domain{});
  EXPECT_EQ(p.cartesian_size(), 0u);
}

TEST(Problem, ConfigValid) {
  Problem p = two_var_problem();
  EXPECT_TRUE(p.config_valid({Value(2), Value(4)}));
  EXPECT_FALSE(p.config_valid({Value(4), Value(4)}));
  EXPECT_FALSE(p.config_valid({Value(2)}));  // wrong arity
}

TEST(Problem, ConfigToString) {
  Problem p = two_var_problem();
  EXPECT_EQ(p.config_to_string({Value(2), Value(3)}), "x=2, y=3");
}
