// Tests for RNG, timers, and table/format helpers.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "tunespace/util/rng.hpp"
#include "tunespace/util/table.hpp"
#include "tunespace/util/timer.hpp"

using namespace tunespace::util;

TEST(RngTest, DeterministicForSeed) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  bool differs = false;
  Rng a2(1);
  for (int i = 0; i < 100; ++i) differs |= (a2() != c());
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformRealInRange) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(7);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(8);
  auto idx = rng.sample_indices(100, 30);
  EXPECT_EQ(idx.size(), 30u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto i : idx) EXPECT_LT(i, 100u);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, SplitIndependentStreams) {
  Rng a(10);
  Rng b = a.split();
  EXPECT_NE(a(), b());
}

TEST(VirtualClockTest, Advances) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 4.0);
  clock.reset();
  EXPECT_EQ(clock.now(), 0.0);
}

TEST(WallTimerTest, MeasuresElapsed) {
  WallTimer t;
  double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  (void)x;
  EXPECT_GT(t.seconds(), 0.0);
}

TEST(TableTest, AlignedRender) {
  Table t({"name", "value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "23456"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, CsvQuoting) {
  Table t({"a", "b"});
  t.add_row({"with,comma", "with\"quote"});
  std::ostringstream ss;
  t.print_csv(ss);
  EXPECT_NE(ss.str().find("\"with,comma\""), std::string::npos);
  EXPECT_NE(ss.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(FormatTest, FmtSeconds) {
  EXPECT_EQ(fmt_seconds(0.0000005), "0.5 us");
  EXPECT_EQ(fmt_seconds(0.005), "5 ms");
  EXPECT_EQ(fmt_seconds(2.5), "2.5 s");
  EXPECT_EQ(fmt_seconds(7200.0), "2 h");
}

TEST(FormatTest, FmtCount) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(2415919104ULL), "2,415,919,104");
}

TEST(FormatTest, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 3), "3.14");
  EXPECT_EQ(fmt_double(1000000.0, 4), "1e+06");
}

TEST(FormatTest, Sparkline) {
  const std::string s = sparkline({0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(sparkline({}).empty());
  // Constant input renders at the lowest level without crashing.
  EXPECT_FALSE(sparkline({2, 2, 2}).empty());
}
