// Tests for the tuning layer: performance models, optimizers, runner.
#include <gtest/gtest.h>

#include <algorithm>

#include "tunespace/spaces/realworld.hpp"
#include "tunespace/tuner/runner.hpp"
#include "tunespace/tuner/session.hpp"

using namespace tunespace;
using tuner::EvalContext;

namespace {

tuner::TuningProblem small_spec() {
  tuner::TuningProblem spec("small");
  spec.add_param("block_size_x", {8, 16, 32, 64, 128})
      .add_param("block_size_y", {1, 2, 4, 8})
      .add_param("sh_power", {0, 1});
  spec.add_constraint("32 <= block_size_x * block_size_y <= 512");
  return spec;
}

tuner::Method optimized_method() {
  auto methods = tuner::construction_methods(false);
  return std::move(methods[0]);
}

}  // namespace

TEST(PerformanceModels, DeterministicAndPositive) {
  tuner::HotspotModel hotspot;
  std::vector<std::string> names{"block_size_x", "block_size_y", "sh_power"};
  csp::Config config{csp::Value(32), csp::Value(8), csp::Value(1)};
  const double a = hotspot.gflops(names, config);
  const double b = hotspot.gflops(names, config);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0.0);
}

TEST(PerformanceModels, OccupancySweetSpot) {
  tuner::HotspotModel hotspot;
  std::vector<std::string> names{"block_size_x", "block_size_y"};
  const double tiny = hotspot.gflops(names, {csp::Value(1), csp::Value(1)});
  const double good = hotspot.gflops(names, {csp::Value(32), csp::Value(8)});
  EXPECT_GT(good, tiny * 2);
}

TEST(PerformanceModels, SharedMemoryStagingHelpsGemm) {
  tuner::GemmModel gemm;
  std::vector<std::string> names{"MDIMC", "NDIMC", "SA", "SB"};
  const double without = gemm.gflops(names, {csp::Value(16), csp::Value(16),
                                             csp::Value(0), csp::Value(0)});
  const double with = gemm.gflops(names, {csp::Value(16), csp::Value(16),
                                          csp::Value(1), csp::Value(1)});
  EXPECT_GT(with, without);
}

TEST(PerformanceModels, EvaluationCostDecreasesWithSpeed) {
  tuner::HotspotModel model;
  EXPECT_GT(model.evaluation_cost(10.0), model.evaluation_cost(1000.0));
  EXPECT_GT(model.evaluation_cost(1000.0), 0.0);
}

TEST(PerformanceModels, SyntheticHandlesArbitraryParams) {
  tuner::SyntheticModel model(7);
  std::vector<std::string> names{"alpha", "beta"};
  EXPECT_GT(model.gflops(names, {csp::Value(4), csp::Value(9)}), 0.0);
}

class EveryOptimizer : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<tuner::Optimizer> make() const {
    switch (GetParam()) {
      case 0: return std::make_unique<tuner::RandomSearch>();
      case 1: return std::make_unique<tuner::GeneticAlgorithm>();
      case 2: return std::make_unique<tuner::SimulatedAnnealing>();
      default: return std::make_unique<tuner::HillClimber>();
    }
  }
};

TEST_P(EveryOptimizer, FindsGoodConfigurationsWithinBudget) {
  auto optimizer = make();
  tuner::HotspotModel model;
  tuner::TuningOptions options;
  options.budget_seconds = 200.0;
  options.seed = 11;
  auto method = optimized_method();
  auto run = tuner::run_session(
      tuner::make_session_request(small_spec(), method, model, *optimizer, options));
  EXPECT_GT(run.evaluations, 5u);
  EXPECT_GT(run.best_gflops, 0.0);
  // The trajectory must be monotonically improving over time.
  for (std::size_t i = 1; i < run.trajectory.size(); ++i) {
    EXPECT_GE(run.trajectory[i].best_gflops, run.trajectory[i - 1].best_gflops);
    EXPECT_GE(run.trajectory[i].time_seconds, run.trajectory[i - 1].time_seconds);
  }
}

TEST_P(EveryOptimizer, RespectsBudget) {
  auto optimizer = make();
  tuner::HotspotModel model;
  tuner::TuningOptions options;
  options.budget_seconds = 20.0;  // just a handful of evaluations
  auto method = optimized_method();
  auto run = tuner::run_session(
      tuner::make_session_request(small_spec(), method, model, *optimizer, options));
  EXPECT_LE(run.evaluations, 60u);
  for (const auto& pt : run.trajectory) {
    EXPECT_LE(pt.time_seconds, options.budget_seconds + 6.0);  // last eval may straddle
  }
}

INSTANTIATE_TEST_SUITE_P(Optimizers, EveryOptimizer, ::testing::Range(0, 4));

TEST(Runner, DeterministicForFixedSeed) {
  tuner::RandomSearch rs1, rs2;
  tuner::HotspotModel model;
  tuner::TuningOptions options;
  options.budget_seconds = 100.0;
  options.seed = 21;
  auto m1 = optimized_method();
  auto m2 = optimized_method();
  auto a = tuner::run_session(
      tuner::make_session_request(small_spec(), m1, model, rs1, options));
  auto b = tuner::run_session(
      tuner::make_session_request(small_spec(), m2, model, rs2, options));
  EXPECT_EQ(a.best_gflops, b.best_gflops);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Runner, ConstructionLatencyDelaysFirstEvaluation) {
  tuner::RandomSearch rs;
  tuner::HotspotModel model;
  tuner::TuningOptions options;
  options.budget_seconds = 100.0;
  // Inflate construction latency so it eats most of the budget.
  options.construction_time_scale = 1e6;
  auto method = optimized_method();
  auto run = tuner::run_session(
      tuner::make_session_request(small_spec(), method, model, rs, options));
  if (!run.trajectory.empty()) {
    EXPECT_GT(run.trajectory.front().time_seconds,
              run.construction_seconds * options.construction_time_scale * 0.99);
  }
}

TEST(Runner, ExhaustedBudgetBeforeConstructionYieldsNoEvals) {
  tuner::RandomSearch rs;
  tuner::HotspotModel model;
  tuner::TuningOptions options;
  options.budget_seconds = 1e-9;
  auto method = optimized_method();
  auto run = tuner::run_session(
      tuner::make_session_request(small_spec(), method, model, rs, options));
  EXPECT_EQ(run.evaluations, 0u);
  EXPECT_TRUE(run.trajectory.empty());
  EXPECT_EQ(run.best_at(1.0), 0.0);
}

TEST(Runner, BestAtInterpolatesTrajectory) {
  tuner::TuningRun run;
  run.trajectory = {{10.0, 100.0, 1}, {20.0, 150.0, 2}};
  EXPECT_EQ(run.best_at(5.0), 0.0);
  EXPECT_EQ(run.best_at(15.0), 100.0);
  EXPECT_EQ(run.best_at(25.0), 150.0);
}

TEST(Runner, RandomSamplingOnHotspotSubset) {
  // End-to-end smoke of the Fig. 6 pipeline on the real Hotspot space
  // (restricted budget; full replication lives in bench_fig6).
  auto rw = spaces::hotspot();
  tuner::RandomSearch rs;
  tuner::HotspotModel model;
  tuner::TuningOptions options;
  options.budget_seconds = 60.0;
  options.seed = 3;
  auto method = optimized_method();
  auto run = tuner::run_session(
      tuner::make_session_request(rw.spec, method, model, rs, options));
  EXPECT_GT(run.evaluations, 0u);
  EXPECT_GT(run.best_gflops, 0.0);
}
