// Tests for the eight real-world space definitions (Table 2): exact
// Cartesian sizes and parameter counts, calibrated valid fractions, and
// cross-solver validation on the tractable instances.
#include <gtest/gtest.h>

#include "tunespace/solver/validate.hpp"
#include "tunespace/spaces/realworld.hpp"
#include "tunespace/tuner/pipeline.hpp"

using namespace tunespace;

namespace {

solver::SolveResult solve_optimized(const spaces::RealWorldSpace& rw) {
  auto methods = tuner::construction_methods(false);
  return tuner::construct(rw.spec, methods[0]);
}

}  // namespace

class RealWorldSpaces : public ::testing::TestWithParam<int> {
 protected:
  spaces::RealWorldSpace space() const { return spaces::all_realworld()[GetParam()]; }
};

TEST_P(RealWorldSpaces, CartesianSizeMatchesPaperExactly) {
  const auto rw = space();
  EXPECT_EQ(rw.spec.cartesian_size(), rw.paper.cartesian_size) << rw.name;
}

TEST_P(RealWorldSpaces, ParameterAndConstraintCountsMatchPaper) {
  const auto rw = space();
  EXPECT_EQ(rw.spec.num_params(), rw.paper.num_params) << rw.name;
  EXPECT_EQ(rw.spec.constraints().size(), rw.paper.num_constraints) << rw.name;
}

TEST_P(RealWorldSpaces, ValidFractionNearPaper) {
  const auto rw = space();
  if (rw.paper.cartesian_size > 100000000ULL) {
    GTEST_SKIP() << "large space exercised by benches, not unit tests";
  }
  auto result = solve_optimized(rw);
  ASSERT_GT(result.solutions.size(), 0u) << rw.name;
  const double pct = 100.0 * static_cast<double>(result.solutions.size()) /
                     static_cast<double>(rw.paper.cartesian_size);
  // Calibration tolerance: within a factor 1.5 of the paper's fraction.
  EXPECT_GT(pct, rw.paper.percent_valid / 1.5) << rw.name;
  EXPECT_LT(pct, rw.paper.percent_valid * 1.5) << rw.name;
}

TEST_P(RealWorldSpaces, EverySolutionSatisfiesEveryConstraint) {
  const auto rw = space();
  if (rw.paper.cartesian_size > 100000000ULL) GTEST_SKIP();
  auto problem = tuner::build_problem(rw.spec, tuner::PipelineOptions::optimized());
  auto result = solve_optimized(rw);
  // Validate a sample of solutions against a reference problem built with
  // the *unoptimized* pipeline (monolithic interpreted constraints).
  auto reference =
      tuner::build_problem(rw.spec, tuner::PipelineOptions::original());
  const std::size_t stride = std::max<std::size_t>(1, result.solutions.size() / 500);
  for (std::size_t r = 0; r < result.solutions.size(); r += stride) {
    EXPECT_TRUE(reference.config_valid(result.solutions.config(r, problem)))
        << rw.name << " row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEight, RealWorldSpaces, ::testing::Range(0, 8));

TEST(RealWorldValidation, SolversAgreeOnDedispersion) {
  auto rw = spaces::dedispersion();
  auto methods = tuner::construction_methods(false);
  auto reference = tuner::construct(rw.spec, methods[0]);
  for (std::size_t m = 1; m < methods.size(); ++m) {
    auto result = tuner::construct(rw.spec, methods[m]);
    EXPECT_TRUE(result.solutions.same_solutions(reference.solutions))
        << methods[m].name;
  }
}

TEST(RealWorldValidation, SolversAgreeOnPrl2x2) {
  auto rw = spaces::atf_prl(2);
  auto methods = tuner::construction_methods(true);
  auto reference = tuner::construct(rw.spec, methods[0]);
  for (std::size_t m = 1; m < methods.size(); ++m) {
    auto result = tuner::construct(rw.spec, methods[m]);
    EXPECT_TRUE(result.solutions.same_solutions(reference.solutions))
        << methods[m].name;
  }
}

TEST(RealWorldValidation, FastSolversAgreeOnPrl8x8) {
  // The 2.4e9-Cartesian space is out of reach for brute force in a unit
  // test, but the sparse solvers handle it quickly and must agree.
  auto rw = spaces::atf_prl(8);
  auto methods = tuner::construction_methods(false);
  auto optimized = tuner::construct(rw.spec, methods[0]);  // optimized
  auto atf = tuner::construct(rw.spec, methods[1]);        // chain-of-trees
  EXPECT_GT(optimized.solutions.size(), 0u);
  EXPECT_TRUE(optimized.solutions.same_solutions(atf.solutions));
}

TEST(RealWorldMeta, AllEightPresentInTableOrder) {
  auto all = spaces::all_realworld();
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all[0].name, "Dedispersion");
  EXPECT_EQ(all[1].name, "ExpDist");
  EXPECT_EQ(all[2].name, "Hotspot");
  EXPECT_EQ(all[3].name, "GEMM");
  EXPECT_EQ(all[4].name, "MicroHH");
  EXPECT_EQ(all[5].name, "ATF PRL 2x2");
  EXPECT_EQ(all[7].name, "ATF PRL 8x8");
}
