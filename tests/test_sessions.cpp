// Tests for the concurrent multi-session runtime: SharedEvalCache,
// SessionManager (shared spaces, shared measurements, determinism vs the
// isolated run_tuning path), the Portfolio lockstep race, and the
// shared-ownership SubSpace handoff.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "tunespace/searchspace/view.hpp"
#include "tunespace/tuner/runner.hpp"
#include "tunespace/tuner/session.hpp"

using namespace tunespace;

namespace {

tuner::TuningProblem small_spec() {
  tuner::TuningProblem spec("small");
  spec.add_param("block_size_x", {8, 16, 32, 64, 128})
      .add_param("block_size_y", {1, 2, 4, 8})
      .add_param("sh_power", {0, 1});
  spec.add_constraint("32 <= block_size_x * block_size_y <= 512");
  return spec;
}

tuner::TuningProblem other_spec() {
  tuner::TuningProblem spec("other");
  spec.add_param("tile", {1, 2, 4, 8, 16}).add_param("unroll", {1, 2, 4});
  spec.add_constraint("tile * unroll <= 32");
  return spec;
}

tuner::TuningOptions fixed_options(std::uint64_t seed, double budget = 120.0) {
  tuner::TuningOptions options;
  options.budget_seconds = budget;
  options.seed = seed;
  // Fix the construction charge so virtual timelines are bit-reproducible
  // across repeats, worker counts, and the isolated/managed paths.
  options.fixed_construction_seconds = 3.0;
  return options;
}

tuner::SessionRequest request_for(const tuner::TuningProblem& spec,
                                  std::uint64_t seed, double budget = 120.0) {
  tuner::SessionRequest request;
  request.spec = spec;
  request.model = std::make_shared<tuner::HotspotModel>();
  request.make_optimizer = [] { return std::make_unique<tuner::RandomSearch>(); };
  request.options = fixed_options(seed, budget);
  return request;
}

tuner::SessionManagerOptions with_workers(std::size_t workers,
                                          std::string cache_dir = "") {
  tuner::SessionManagerOptions options;
  options.workers = workers;
  options.snapshot_cache_dir = std::move(cache_dir);
  return options;
}

tuner::TuningRun isolated_run(const tuner::TuningProblem& spec,
                              std::uint64_t seed, double budget = 120.0) {
  tuner::RandomSearch rs;
  tuner::HotspotModel model;
  const tuner::Method method = tuner::optimized_method();
  return tuner::run_session(
      tuner::make_session_request(spec, method, model, rs,
                                  fixed_options(seed, budget)));
}

}  // namespace

// --- SharedEvalCache --------------------------------------------------------

TEST(SharedEvalCache, LookupInsertAndCounters) {
  tuner::SharedEvalCache cache(8);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(1, 2).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  cache.insert(1, 2, {123.5, 41.0});
  ASSERT_TRUE(cache.lookup(1, 2).has_value());
  EXPECT_EQ(cache.lookup(1, 2)->gflops, 123.5);
  EXPECT_EQ(cache.lookup(1, 2)->watts, 41.0);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SharedEvalCache, KeysAreExactNotHashed) {
  tuner::SharedEvalCache cache(1);  // one stripe: every key collides on it
  cache.insert(10, 20, {1.0, 0.0});
  cache.insert(20, 10, {2.0, 0.0});
  EXPECT_EQ(cache.lookup(10, 20)->gflops, 1.0);
  EXPECT_EQ(cache.lookup(20, 10)->gflops, 2.0);
  EXPECT_FALSE(cache.lookup(10, 10).has_value());
}

TEST(SharedEvalCache, FirstInsertWins) {
  tuner::SharedEvalCache cache;
  cache.insert(1, 1, {5.0, 0.0});
  cache.insert(1, 1, {9.0, 0.0});  // a racing duplicate must not change the value
  EXPECT_EQ(cache.lookup(1, 1)->gflops, 5.0);
  EXPECT_EQ(cache.size(), 1u);
}

// --- run_session vs the deprecated shims ------------------------------------

TEST(SessionLoop, DeprecatedShimsMatchRunSession) {
  // Dedicated shim test: the [[deprecated]] entry points must forward to
  // run_session with identical results until they are removed (see
  // CONTRIBUTING.md).
  const auto spec = small_spec();
  const searchspace::SearchSpace space(spec);
  tuner::HotspotModel model;
  tuner::RandomSearch rs1, rs2;
  const tuner::Method method = tuner::optimized_method();
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const auto via_loop = tuner::run_session_loop(
      space, "optimized", space.construction_seconds(), model, rs1,
      fixed_options(17));
  const auto via_run_tuning =
      tuner::run_tuning(spec, method, model, rs2, fixed_options(17));
#pragma GCC diagnostic pop
  const auto canonical = isolated_run(spec, 17);
  EXPECT_EQ(via_loop, canonical);
  EXPECT_EQ(via_run_tuning, canonical);
}

TEST(SessionLoop, SharedCacheDoesNotChangeTheResult) {
  const auto spec = small_spec();
  const searchspace::SearchSpace space(spec);
  tuner::HotspotModel model;
  tuner::SharedEvalCache cache;
  tuner::SessionStats stats_cold, stats_warm;
  tuner::RandomSearch rs1, rs2, rs3;
  const auto loop_request = [&](tuner::Optimizer& optimizer) {
    auto request =
        tuner::make_session_request(searchspace::SubSpace(space), model,
                                    optimizer, fixed_options(5), "optimized");
    request.construction_seconds = 0;
    return request;
  };
  const auto plain = tuner::run_session(loop_request(rs1));
  auto cold_request = loop_request(rs2);
  cold_request.shared_cache = &cache;
  cold_request.cache_fingerprint = space.fingerprint();
  cold_request.stats = &stats_cold;
  const auto cold = tuner::run_session(cold_request);
  auto warm_request = loop_request(rs3);
  warm_request.shared_cache = &cache;
  warm_request.cache_fingerprint = space.fingerprint();
  warm_request.stats = &stats_warm;
  const auto warm = tuner::run_session(warm_request);
  EXPECT_EQ(plain, cold);
  EXPECT_EQ(plain, warm);
  EXPECT_EQ(stats_cold.shared_cache_hits, 0u);
  EXPECT_GT(stats_cold.model_evaluations, 0u);
  // The second identical session replays entirely from the shared cache.
  EXPECT_EQ(stats_warm.model_evaluations, 0u);
  EXPECT_EQ(stats_warm.shared_cache_hits, cold.evaluations);
}

// --- SessionManager ---------------------------------------------------------

TEST(SessionManager, SharesSpacesAndMatchesIsolatedRuns) {
  std::vector<tuner::SessionRequest> requests;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    requests.push_back(request_for(small_spec(), seed));
  }
  requests.push_back(request_for(other_spec(), 7));
  requests.push_back(request_for(other_spec(), 8));

  tuner::SessionManager manager(with_workers(4));
  const auto results = manager.run_all(std::move(requests));
  ASSERT_EQ(results.size(), 8u);

  // Two distinct fingerprints: one build each, six reuses in total.
  EXPECT_EQ(manager.spaces_built(), 2u);
  EXPECT_EQ(manager.spaces_shared(), 6u);

  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    EXPECT_EQ(results[seed - 1].run, isolated_run(small_spec(), seed))
        << "session seed " << seed;
  }
  EXPECT_EQ(results[6].run, isolated_run(other_spec(), 7));
  EXPECT_EQ(results[7].run, isolated_run(other_spec(), 8));

  // Same-spec sessions overlap heavily on a small space: the shared cache
  // must have served a good share of their evaluations.
  EXPECT_GT(manager.eval_cache().hits(), 0u);
  std::uint64_t hits = 0;
  for (const auto& r : results) hits += r.stats.shared_cache_hits;
  EXPECT_EQ(hits, manager.eval_cache().hits());
}

TEST(SessionManager, DeterministicAcrossWorkerCounts) {
  const auto build_requests = [] {
    std::vector<tuner::SessionRequest> requests;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      requests.push_back(request_for(small_spec(), seed));
    }
    return requests;
  };
  tuner::SessionManager serial(with_workers(1));
  tuner::SessionManager parallel(with_workers(8));
  const auto a = serial.run_all(build_requests());
  const auto b = parallel.run_all(build_requests());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].run, b[i].run) << "session " << i;
  }
}

TEST(SessionManager, RestrictionMatchesManualViewTuning) {
  auto request = request_for(small_spec(), 11);
  request.restriction = searchspace::query::eq("sh_power", csp::Value(1));
  tuner::SessionManager manager;
  const auto results = manager.run_all({std::move(request)});
  ASSERT_EQ(results.size(), 1u);

  const searchspace::SearchSpace space(small_spec());
  const auto view = searchspace::SubSpace(space).restrict(
      searchspace::query::eq("sh_power", csp::Value(1)));
  tuner::RandomSearch rs;
  tuner::HotspotModel model;
  auto expected = tuner::run_session(
      tuner::make_session_request(view, model, rs, fixed_options(11)));
  expected.method_name = "optimized";  // manager reports the method name
  EXPECT_EQ(results[0].run, expected);
}

TEST(SessionManager, LambdaSpecsNeverShare) {
  auto spec = small_spec();
  spec.add_constraint({"block_size_x"},
                      [](std::span<const csp::Value> v) { return v[0].as_int() >= 16; },
                      "bsx >= 16");
  std::vector<tuner::SessionRequest> requests;
  requests.push_back(request_for(spec, 1));
  requests.push_back(request_for(spec, 2));
  tuner::SessionManager manager;
  const auto results = manager.run_all(std::move(requests));
  EXPECT_EQ(manager.spaces_built(), 2u);  // private space per session
  EXPECT_EQ(manager.spaces_shared(), 0u);
  // Opaque fingerprints also disable measurement sharing.
  EXPECT_EQ(results[0].stats.shared_cache_hits, 0u);
  EXPECT_EQ(results[1].stats.shared_cache_hits, 0u);
  EXPECT_GT(results[0].run.evaluations, 0u);
}

TEST(SessionManager, SnapshotCacheDirServesReloads) {
  const std::string dir = "test_sessions_cache";
  std::filesystem::remove_all(dir);
  {
    tuner::SessionManager manager(with_workers(2, dir));
    const auto results = manager.run_all({request_for(small_spec(), 3)});
    EXPECT_EQ(results[0].run, isolated_run(small_spec(), 3));
  }
  EXPECT_FALSE(std::filesystem::is_empty(dir));  // cache was populated
  {
    // A fresh manager reloads the snapshot instead of re-solving; the
    // result is unchanged.
    tuner::SessionManager manager(with_workers(2, dir));
    const auto results = manager.run_all({request_for(small_spec(), 3)});
    EXPECT_EQ(results[0].run, isolated_run(small_spec(), 3));
  }
  std::filesystem::remove_all(dir);
}

TEST(SessionManager, BuildFailuresPropagate) {
  auto request = request_for(small_spec(), 1);
  request.spec.add_constraint("this is ( not an expression");
  tuner::SessionManager manager;
  std::vector<tuner::SessionRequest> requests;
  requests.push_back(std::move(request));
  EXPECT_THROW(manager.run_all(std::move(requests)), std::exception);
}

TEST(SessionManager, SharingDisabledStillCorrect) {
  tuner::SessionManagerOptions options;
  options.share_spaces = false;
  options.share_evaluations = false;
  tuner::SessionManager manager(options);
  std::vector<tuner::SessionRequest> requests;
  requests.push_back(request_for(small_spec(), 21));
  requests.push_back(request_for(small_spec(), 22));
  const auto results = manager.run_all(std::move(requests));
  EXPECT_EQ(manager.spaces_built(), 2u);
  EXPECT_EQ(manager.eval_cache().hits() + manager.eval_cache().misses(), 0u);
  EXPECT_EQ(results[0].run, isolated_run(small_spec(), 21));
  EXPECT_EQ(results[1].run, isolated_run(small_spec(), 22));
}

// --- Portfolio --------------------------------------------------------------

namespace {

tuner::PortfolioResult race_once(const searchspace::SubSpace& view,
                                 std::uint64_t root_seed,
                                 double stall_seconds = 0,
                                 double target_gflops = 0) {
  tuner::PortfolioOptions options;
  options.base = fixed_options(root_seed, 150.0);
  options.stall_seconds = stall_seconds;
  options.target_gflops = target_gflops;
  tuner::HotspotModel model;
  return tuner::run_portfolio(view, model, tuner::default_portfolio(), options);
}

}  // namespace

TEST(Portfolio, DeterministicForARootSeed) {
  const searchspace::SearchSpace space(small_spec());
  const auto a = race_once(space, 99);
  const auto b = race_once(space, 99);
  ASSERT_EQ(a.members.size(), 7u);  // ...including the surrogate member
  for (std::size_t m = 0; m < a.members.size(); ++m) {
    EXPECT_EQ(a.members[m].seed, b.members[m].seed);
    EXPECT_EQ(a.members[m].run, b.members[m].run) << a.members[m].optimizer_name;
  }
  EXPECT_EQ(a.merged, b.merged);
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.early_stopped, b.early_stopped);
}

TEST(Portfolio, MembersAreSeedSplitFromTheRoot) {
  const searchspace::SearchSpace space(small_spec());
  const auto a = race_once(space, 1);
  const auto b = race_once(space, 2);
  bool any_seed_differs = false;
  for (std::size_t m = 0; m < a.members.size(); ++m) {
    if (a.members[m].seed != b.members[m].seed) any_seed_differs = true;
  }
  EXPECT_TRUE(any_seed_differs);
}

TEST(Portfolio, MergedRunIsConsistent) {
  const searchspace::SearchSpace space(small_spec());
  const auto result = race_once(space, 7);

  double member_best = 0;
  std::size_t member_evals = 0;
  for (const auto& member : result.members) {
    member_best = std::max(member_best, member.run.best_gflops);
    member_evals += member.run.evaluations;
  }
  EXPECT_EQ(result.merged.best_gflops, member_best);
  EXPECT_EQ(result.merged.evaluations, member_evals);
  EXPECT_EQ(result.members[result.winner].run.best_gflops, member_best);

  // Monotone merged trajectory, consistent best_at.
  for (std::size_t i = 1; i < result.merged.trajectory.size(); ++i) {
    EXPECT_GT(result.merged.trajectory[i].best_gflops,
              result.merged.trajectory[i - 1].best_gflops);
    EXPECT_GE(result.merged.trajectory[i].time_seconds,
              result.merged.trajectory[i - 1].time_seconds);
  }
  ASSERT_FALSE(result.merged.trajectory.empty());
  EXPECT_EQ(result.merged.best_at(result.merged.budget_seconds), member_best);
  EXPECT_EQ(result.merged.best_at(0.0), 0.0);
}

TEST(Portfolio, StallRuleStopsTheRaceEarly) {
  const searchspace::SearchSpace space(small_spec());
  const auto free_run = race_once(space, 13);
  const auto stalled = race_once(space, 13, /*stall_seconds=*/10.0);
  EXPECT_TRUE(stalled.early_stopped);
  EXPECT_FALSE(free_run.early_stopped);
  EXPECT_LT(stalled.merged.evaluations, free_run.merged.evaluations);
  // The race is still deterministic under the stall rule.
  EXPECT_EQ(stalled.merged, race_once(space, 13, 10.0).merged);
}

TEST(Portfolio, TargetStopsTheRaceImmediately) {
  const searchspace::SearchSpace space(small_spec());
  const auto result = race_once(space, 5, 0, /*target_gflops=*/0.001);
  EXPECT_TRUE(result.early_stopped);
  // Every member halts shortly after the first measurement hits the target.
  const auto free_run = race_once(space, 5);
  EXPECT_LT(result.merged.evaluations, free_run.merged.evaluations);
}

TEST(Portfolio, MembersShareMeasurements) {
  const searchspace::SearchSpace space(small_spec());
  tuner::PortfolioOptions options;
  options.base = fixed_options(3, 150.0);
  tuner::HotspotModel model;
  tuner::SharedEvalCache cache;
  const auto result = tuner::run_portfolio(space, model,
                                           tuner::default_portfolio(), options,
                                           &cache);
  EXPECT_GT(result.merged.evaluations, 0u);
  // On a 26-row space six racers must re-request rows another member
  // already measured.
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_LE(cache.size(), space.size());
}

TEST(Portfolio, MemberExceptionsPropagateWithoutDeadlock) {
  class ThrowingModel : public tuner::PerformanceModel {
   public:
    std::string name() const override { return "throwing"; }
    double gflops(const std::vector<std::string>&,
                  const csp::Config&) const override {
      throw std::runtime_error("model exploded");
    }
  };
  const searchspace::SearchSpace space(small_spec());
  tuner::PortfolioOptions options;
  options.base = fixed_options(1);
  ThrowingModel model;
  // The first member's failure must surface as an exception after every
  // member unwound — not terminate the process or deadlock the race.
  EXPECT_THROW(tuner::run_portfolio(space, model, tuner::default_portfolio(),
                                    options),
               std::runtime_error);
}

TEST(Portfolio, EmptyPortfolioAndEmptyViewAreSafe) {
  const searchspace::SearchSpace space(small_spec());
  tuner::PortfolioOptions options;
  options.base = fixed_options(1);
  tuner::HotspotModel model;
  const auto none = tuner::run_portfolio(space, model, {}, options);
  EXPECT_TRUE(none.members.empty());
  EXPECT_EQ(none.merged.evaluations, 0u);

  const auto empty_view = searchspace::SubSpace(space).restrict(
      searchspace::query::eq("block_size_x", csp::Value(7)));  // no such value
  ASSERT_TRUE(empty_view.empty());
  const auto result =
      tuner::run_portfolio(empty_view, model, tuner::default_portfolio(), options);
  EXPECT_EQ(result.merged.evaluations, 0u);
  EXPECT_TRUE(result.merged.trajectory.empty());
}

// --- Shared-ownership SubSpace handoff --------------------------------------

TEST(SubSpaceKeepalive, ViewOutlivesTheLastExternalReference) {
  auto space = std::make_shared<const searchspace::SearchSpace>(small_spec());
  const std::size_t rows = space->size();
  searchspace::SubSpace view(std::move(space));  // view holds the only ref
  EXPECT_EQ(view.size(), rows);
  EXPECT_EQ(view.parent().size(), rows);

  // Restrictions chained off the view keep the parent alive too.
  auto restricted = view.restrict(searchspace::query::eq("sh_power", csp::Value(1)));
  view = searchspace::SubSpace(restricted);  // drop the original view
  EXPECT_GT(restricted.size(), 0u);
  EXPECT_LT(restricted.size(), rows);
  EXPECT_EQ(restricted.config(0).size(), 3u);
}

TEST(SubSpaceKeepalive, NullSharedParentThrows) {
  std::shared_ptr<const searchspace::SearchSpace> null_space;
  EXPECT_THROW(searchspace::SubSpace{null_space}, std::invalid_argument);
}
