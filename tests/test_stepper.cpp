// Tests for the SessionStepper ask/tell core: bit-identity of a manual
// suggest/report replay against the closed-loop run_session path for every
// optimizer (over the full space and a restricted view), the ask/tell
// ordering contract, cancellation, shared-cache interaction and custom
// measurement charges.
#include <gtest/gtest.h>

#include <memory>

#include "tunespace/searchspace/query.hpp"
#include "tunespace/searchspace/view.hpp"
#include "tunespace/tuner/runner.hpp"
#include "tunespace/tuner/session.hpp"

using namespace tunespace;

namespace {

tuner::TuningProblem small_spec() {
  tuner::TuningProblem spec("small");
  spec.add_param("block_size_x", {8, 16, 32, 64, 128})
      .add_param("block_size_y", {1, 2, 4, 8})
      .add_param("sh_power", {0, 1});
  spec.add_constraint("32 <= block_size_x * block_size_y <= 512");
  return spec;
}

tuner::TuningOptions fixed_options(std::uint64_t seed, double budget = 120.0) {
  tuner::TuningOptions options;
  options.budget_seconds = budget;
  options.seed = seed;
  options.fixed_construction_seconds = 3.0;
  return options;
}

tuner::SessionStepper::CostFn cost_of(const tuner::PerformanceModel& model) {
  return [&model](const tuner::Measurement& m) {
    return model.evaluation_cost(m.gflops);
  };
}

/// The closed loop a remote client would run: answer every suggestion with
/// the model.  By the stepper's determinism contract this must reproduce
/// run_session bit for bit.
tuner::TuningRun drive(tuner::SessionStepper& stepper,
                       const tuner::PerformanceModel& model) {
  while (auto ask = stepper.suggest()) {
    stepper.report(model.gflops(stepper.param_names(), ask->config));
  }
  EXPECT_TRUE(stepper.finished());
  return stepper.take_run();
}

}  // namespace

// --- Ask/tell replay is bit-identical to the closed loop --------------------

TEST(Stepper, ReplayMatchesClosedLoopForEveryOptimizerFullSpace) {
  const auto spec = small_spec();
  const searchspace::SearchSpace space(spec);
  tuner::HotspotModel model;
  for (const auto& name : tuner::optimizer_names()) {
    auto opt_loop = tuner::make_optimizer(name);
    auto loop_request = tuner::make_session_request(
        searchspace::SubSpace(space), model, *opt_loop, fixed_options(7),
        "optimized");
    loop_request.construction_seconds = space.construction_seconds();
    const auto loop = tuner::run_session(loop_request);

    auto opt_step = tuner::make_optimizer(name);
    tuner::SessionStepper stepper(space, "optimized",
                                  space.construction_seconds(), *opt_step,
                                  fixed_options(7), cost_of(model));
    const auto replay = drive(stepper, model);
    EXPECT_EQ(replay, loop) << "optimizer " << name;
  }
}

TEST(Stepper, ReplayMatchesClosedLoopForEveryOptimizerRestrictedView) {
  const auto spec = small_spec();
  const auto space =
      std::make_shared<searchspace::SearchSpace>(spec);
  const searchspace::SubSpace view =
      searchspace::SubSpace(space).restrict(searchspace::query::eq("sh_power", 1));
  ASSERT_GT(view.size(), 0u);
  tuner::HotspotModel model;
  for (const auto& name : tuner::optimizer_names()) {
    auto opt_loop = tuner::make_optimizer(name);
    auto loop_request = tuner::make_session_request(
        view, model, *opt_loop, fixed_options(23), "optimized");
    loop_request.construction_seconds = space->construction_seconds();
    const auto loop = tuner::run_session(loop_request);

    auto opt_step = tuner::make_optimizer(name);
    tuner::SessionStepper stepper(view, "optimized",
                                  space->construction_seconds(), *opt_step,
                                  fixed_options(23), cost_of(model));
    const auto replay = drive(stepper, model);
    EXPECT_EQ(replay, loop) << "optimizer " << name;
  }
}

TEST(Stepper, SpecRequestsAgreeWithTheStepper) {
  const auto spec = small_spec();
  tuner::HotspotModel model;
  tuner::RandomSearch rs;
  const auto legacy = tuner::run_session(tuner::make_session_request(
      spec, tuner::optimized_method(), model, rs, fixed_options(41)));

  const searchspace::SearchSpace space(spec, tuner::optimized_method());
  tuner::RandomSearch rs2;
  tuner::SessionStepper stepper(space, "optimized",
                                space.construction_seconds(), rs2,
                                fixed_options(41), cost_of(model));
  EXPECT_EQ(drive(stepper, model), legacy);
}

// --- Ordering contract ------------------------------------------------------

TEST(Stepper, ReportWithoutSuggestionThrowsWrongState) {
  const searchspace::SearchSpace space(small_spec());
  tuner::HotspotModel model;
  tuner::RandomSearch rs;
  tuner::SessionStepper stepper(space, "optimized", 0.0, rs, fixed_options(1),
                                cost_of(model));
  try {
    stepper.report(1.0);
    FAIL() << "report before suggest must throw";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kWrongState);
  }
}

TEST(Stepper, SuggestTwiceWithoutReportThrowsWrongState) {
  const searchspace::SearchSpace space(small_spec());
  tuner::HotspotModel model;
  tuner::RandomSearch rs;
  tuner::SessionStepper stepper(space, "optimized", 0.0, rs, fixed_options(1),
                                cost_of(model));
  ASSERT_TRUE(stepper.suggest().has_value());
  EXPECT_TRUE(stepper.awaiting_report());
  try {
    stepper.suggest();
    FAIL() << "second suggest without report must throw";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kWrongState);
  }
}

TEST(Stepper, FinishedSessionIsIdempotentOnSuggestAndRejectsReport) {
  const searchspace::SearchSpace space(small_spec());
  tuner::HotspotModel model;
  tuner::RandomSearch rs;
  // A zero-second budget finishes during construction.
  tuner::SessionStepper stepper(space, "optimized", 0.0, rs,
                                fixed_options(1, 0.0), cost_of(model));
  EXPECT_TRUE(stepper.finished());
  EXPECT_FALSE(stepper.suggest().has_value());
  EXPECT_FALSE(stepper.suggest().has_value());  // idempotent
  try {
    stepper.report(1.0);
    FAIL() << "report after completion must throw";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSessionFinished);
  }
}

TEST(Stepper, TakeRunBeforeFinishThrowsWrongState) {
  const searchspace::SearchSpace space(small_spec());
  tuner::HotspotModel model;
  tuner::RandomSearch rs;
  tuner::SessionStepper stepper(space, "optimized", 0.0, rs, fixed_options(1),
                                cost_of(model));
  ASSERT_TRUE(stepper.suggest().has_value());
  try {
    stepper.take_run();
    FAIL() << "take_run on a live session must throw";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kWrongState);
  }
  stepper.cancel();
}

// --- Cancellation -----------------------------------------------------------

TEST(Stepper, CancelMidSessionYieldsPartialRun) {
  const searchspace::SearchSpace space(small_spec());
  tuner::HotspotModel model;
  tuner::RandomSearch rs;
  tuner::SessionStepper stepper(space, "optimized", 0.0, rs, fixed_options(3),
                                cost_of(model));
  for (int i = 0; i < 3; ++i) {
    auto ask = stepper.suggest();
    ASSERT_TRUE(ask.has_value());
    stepper.report(model.gflops(stepper.param_names(), ask->config));
  }
  stepper.cancel();
  EXPECT_TRUE(stepper.finished());
  EXPECT_FALSE(stepper.suggest().has_value());
  const auto run = stepper.take_run();
  EXPECT_EQ(run.evaluations, 3u);
  EXPECT_GT(run.best_gflops, 0.0);
  stepper.cancel();  // idempotent
}

TEST(Stepper, CancelWithOutstandingSuggestionIsSafe) {
  const searchspace::SearchSpace space(small_spec());
  tuner::HotspotModel model;
  tuner::RandomSearch rs;
  tuner::SessionStepper stepper(space, "optimized", 0.0, rs, fixed_options(3),
                                cost_of(model));
  ASSERT_TRUE(stepper.suggest().has_value());
  stepper.cancel();
  EXPECT_TRUE(stepper.finished());
  EXPECT_FALSE(stepper.suggest().has_value());
}

// --- Shared cache and custom charges ----------------------------------------

TEST(Stepper, SharedCacheHitsResolveInternallyWithoutChangingTheRun) {
  const auto spec = small_spec();
  const searchspace::SearchSpace space(spec);
  tuner::HotspotModel model;

  tuner::RandomSearch rs1;
  tuner::SessionStepper cold(space, "optimized", 0.0, rs1, fixed_options(11),
                             cost_of(model));
  const auto cold_run = drive(cold, model);

  // Prime a cache with every measurement of the space, then replay: the
  // stepper answers all asks internally — the driver sees zero suggestions —
  // yet the TuningRun must be bit-identical.
  tuner::SharedEvalCache cache;
  const std::uint64_t fp = 99;
  const searchspace::SubSpace view(
      std::make_shared<searchspace::SearchSpace>(spec));
  std::vector<std::string> names;
  for (std::size_t p = 0; p < view.num_params(); ++p) {
    names.push_back(view.param_name(p));
  }
  for (std::size_t row = 0; row < view.size(); ++row) {
    cache.insert(fp, view.parent_row(row),
                 {model.gflops(names, view.config(row)), 0.0});
  }
  tuner::RandomSearch rs2;
  tuner::SessionStats stats;
  tuner::SessionStepper warm(view, "optimized", 0.0, rs2, fixed_options(11),
                             cost_of(model), &cache, fp, &stats);
  EXPECT_FALSE(warm.suggest().has_value());  // everything served by the cache
  EXPECT_EQ(warm.take_run(), cold_run);
  EXPECT_EQ(stats.model_evaluations, 0u);
  EXPECT_EQ(stats.shared_cache_hits, cold_run.evaluations);
}

TEST(Stepper, ReportedMeasureSecondsChargeTheClock) {
  const searchspace::SearchSpace space(small_spec());
  tuner::HotspotModel model;
  tuner::RandomSearch rs;
  tuner::TuningOptions options = fixed_options(5, 100.0);
  options.overhead_per_request = 0.0;
  options.fixed_construction_seconds = 0.0;
  tuner::SessionStepper stepper(space, "optimized", 0.0, rs, options,
                                cost_of(model));
  auto ask = stepper.suggest();
  ASSERT_TRUE(ask.has_value());
  stepper.report(10.0, 2.5);  // explicit wall charge instead of cost(gflops)
  EXPECT_DOUBLE_EQ(stepper.now(), 2.5);
  stepper.cancel();
}

TEST(Stepper, BestTracksTheImprovingSuggestion) {
  const searchspace::SearchSpace space(small_spec());
  tuner::HotspotModel model;
  tuner::RandomSearch rs;
  tuner::SessionStepper stepper(space, "optimized", 0.0, rs, fixed_options(9),
                                cost_of(model));
  EXPECT_FALSE(stepper.best().has_value());
  auto ask = stepper.suggest();
  ASSERT_TRUE(ask.has_value());
  const std::size_t first_row = ask->row;
  stepper.report(model.gflops(stepper.param_names(), ask->config));
  ASSERT_TRUE(stepper.best().has_value());
  EXPECT_EQ(stepper.best()->row, first_row);
  stepper.cancel();
}
