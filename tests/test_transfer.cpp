// Tests for cross-session transfer learning: the ridge Surrogate (fit
// determinism, order-independence, ranking, fingerprints), cache-seeded
// warm starts (the bit-identity wall for cold / warm-off / warm-over-empty
// sessions, top-k seeding order, stats accounting), the SurrogateGuided
// model-based optimizer (repeat-run identity, refit counters), TSEC
// merge semantics (first-insert-wins, order-independent for identical
// values), the v2 wire fields, and the TuningService warm-restart path.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tunespace/searchspace/view.hpp"
#include "tunespace/tuner/optimizers.hpp"
#include "tunespace/tuner/protocol.hpp"
#include "tunespace/tuner/runner.hpp"
#include "tunespace/tuner/service.hpp"
#include "tunespace/tuner/session.hpp"
#include "tunespace/tuner/surrogate.hpp"

using namespace tunespace;
namespace wire = tuner::wire;

namespace {

tuner::TuningProblem transfer_spec() {
  tuner::TuningProblem spec("transfer");
  spec.add_param("block_size_x", {1, 2, 4, 8, 16, 32, 64, 128})
      .add_param("block_size_y", {1, 2, 4, 8})
      .add_param("tile", {1, 2, 3, 4})
      .add_param("sh_power", {0, 1});
  spec.add_constraint("16 <= block_size_x * block_size_y <= 512");
  spec.add_constraint("tile <= block_size_y");
  return spec;
}

/// One numeric parameter, no constraints: a landscape the linear surrogate
/// can represent exactly (gflops proportional to the parameter value).
tuner::TuningProblem ramp_spec() {
  tuner::TuningProblem spec("ramp");
  spec.add_param("x", {1, 2, 4, 8, 16, 32});
  return spec;
}

tuner::TuningOptions fixed_options(std::uint64_t seed, double budget = 60.0) {
  tuner::TuningOptions options;
  options.budget_seconds = budget;
  options.seed = seed;
  options.fixed_construction_seconds = 1.0;
  return options;
}

/// Run one session over `view`, optionally against a shared cache.
tuner::TuningRun run_with(const searchspace::SubSpace& view,
                          const tuner::PerformanceModel& model,
                          const std::string& optimizer_name,
                          const tuner::TuningOptions& options,
                          tuner::SharedEvalCache* cache = nullptr,
                          std::uint64_t cache_fp = 0,
                          tuner::SessionStats* stats = nullptr) {
  const auto optimizer = tuner::make_optimizer(optimizer_name);
  auto request = tuner::make_session_request(view, model, *optimizer, options);
  request.shared_cache = cache;
  request.cache_fingerprint = cache_fp;
  request.stats = stats;
  return tuner::run_session(request);
}

tuner::SessionStepper::CostFn cost_of(const tuner::PerformanceModel& model) {
  return [&model](const tuner::Measurement& m) {
    return model.evaluation_cost(m.gflops);
  };
}

/// A scratch directory unique to the current test.
std::filesystem::path scratch_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("tunespace_transfer_") + info->test_suite_name() +
              "_" + info->name());
  std::filesystem::remove_all(dir);
  return dir;
}

}  // namespace

// --- Surrogate model --------------------------------------------------------

TEST(Surrogate, UntrainedRanksByRowAlone) {
  const searchspace::SearchSpace space(ramp_spec());
  const searchspace::SubSpace view(space);
  tuner::Surrogate surrogate;
  EXPECT_FALSE(surrogate.trained());
  EXPECT_EQ(surrogate.observation_count(), 0u);
  EXPECT_EQ(surrogate.rank(view, {3, 0, 5, 2}, tuner::ObjectiveSpec{}),
            (std::vector<std::size_t>{0, 2, 3, 5}));
}

TEST(Surrogate, LearnsAValueRampAndRanksDescending) {
  const searchspace::SearchSpace space(ramp_spec());
  const searchspace::SubSpace view(space);
  ASSERT_EQ(view.size(), 6u);

  // Target exactly linear in the parameter value: representable, so the
  // ranking must recover "bigger x is better" everywhere.
  std::vector<std::pair<std::size_t, tuner::Measurement>> observations;
  const auto value_of = [&](std::size_t row) {
    return space.config(row)[0].as_real();
  };
  for (std::size_t row = 0; row < view.size(); ++row) {
    observations.push_back({row, {10.0 + value_of(row), 0.0}});
  }
  tuner::Surrogate surrogate;
  surrogate.fit(view, observations);
  ASSERT_TRUE(surrogate.trained());
  EXPECT_EQ(surrogate.observation_count(), view.size());

  std::vector<std::size_t> rows{0, 1, 2, 3, 4, 5};
  std::vector<std::size_t> by_value = rows;
  std::sort(by_value.begin(), by_value.end(), [&](std::size_t a, std::size_t b) {
    return value_of(a) > value_of(b);
  });
  EXPECT_EQ(surrogate.rank(view, rows, tuner::ObjectiveSpec{}), by_value);
  EXPECT_GT(surrogate.predict(view, by_value.front()).gflops,
            surrogate.predict(view, by_value.back()).gflops);
}

TEST(Surrogate, FitIsIndependentOfObservationOrder) {
  const searchspace::SearchSpace space(transfer_spec());
  const searchspace::SubSpace view(space);
  tuner::HotspotModel model;
  const std::vector<std::string> names = view.problem().variable_names();

  std::vector<std::pair<std::size_t, tuner::Measurement>> forward;
  for (std::size_t row = 0; row < 40; ++row) {
    forward.push_back({row, {model.gflops(names, view.config(row)), 0.0}});
  }
  std::vector<std::pair<std::size_t, tuner::Measurement>> backward(
      forward.rbegin(), forward.rend());
  // Duplicates with identical values (the only duplicates a deterministic
  // model can produce) must not perturb the fit either.
  auto with_duplicates = forward;
  with_duplicates.push_back(forward[3]);
  with_duplicates.insert(with_duplicates.begin(), forward[17]);

  tuner::Surrogate a, b, c;
  a.fit(view, forward);
  b.fit(view, backward);
  c.fit(view, with_duplicates);
  ASSERT_TRUE(a.trained());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), c.fingerprint());
  EXPECT_EQ(a.observation_count(), 40u);
  EXPECT_EQ(c.observation_count(), 40u);  // duplicates deduplicated

  // And the fingerprint really separates models: a different observation
  // set trains different weights.
  tuner::Surrogate d;
  d.fit(view, std::vector<std::pair<std::size_t, tuner::Measurement>>(
                  forward.begin(), forward.begin() + 20));
  EXPECT_NE(a.fingerprint(), d.fingerprint());
  EXPECT_NE(a.fingerprint(), tuner::Surrogate{}.fingerprint());
}

// --- Warm-start seeding -----------------------------------------------------

TEST(WarmStart, ColdWarmOffAndWarmOverEmptyCacheAreBitIdentical) {
  const searchspace::SearchSpace space(transfer_spec());
  const searchspace::SubSpace view(space);
  tuner::HotspotModel model;

  const auto cold =
      run_with(view, model, "random-sampling", fixed_options(9));
  tuner::SharedEvalCache attached;
  const auto warm_off = run_with(view, model, "random-sampling",
                                 fixed_options(9), &attached, 77);
  tuner::SharedEvalCache empty;
  tuner::TuningOptions warm_options = fixed_options(9);
  warm_options.warm_start = true;
  const auto warm_empty =
      run_with(view, model, "random-sampling", warm_options, &empty, 77);

  // The hard gate: transfer machinery is invisible until the cache has
  // rows — all three runs trace the exact same trajectory.
  EXPECT_EQ(cold, warm_off);
  EXPECT_EQ(cold, warm_empty);
}

TEST(WarmStart, SeedsTopKByScoreAndCountsStats) {
  const searchspace::SearchSpace space(transfer_spec());
  const searchspace::SubSpace view(space);
  tuner::HotspotModel model;
  const std::uint64_t fp = 42;

  // 20 cached rows with known scores: 0 -> 1 GFLOP/s ... 19 -> 20 GFLOP/s.
  tuner::SharedEvalCache cache;
  for (std::uint64_t row = 0; row < 20; ++row) {
    cache.insert(fp, row, {static_cast<double>(row + 1), 0.0});
  }

  tuner::TuningOptions options = fixed_options(5);
  options.warm_start = true;
  tuner::SessionStats stats;
  const auto optimizer = tuner::make_optimizer("random-sampling");
  tuner::SessionStepper stepper(view, "optimized", 1.0, *optimizer, options,
                                cost_of(model), &cache, fp, &stats);

  // Top-k (default 8) seeds, best cached score first.
  ASSERT_EQ(stepper.seeded().size(), 8u);
  EXPECT_EQ(stats.seeded_rows, 8u);
  for (std::size_t i = 0; i < stepper.seeded().size(); ++i) {
    EXPECT_EQ(stepper.seeded()[i].second.gflops, 20.0 - static_cast<double>(i));
  }
  // Seeds are charged as normal evaluations and move the incumbent.
  EXPECT_GE(stepper.run().evaluations, 8u);
  EXPECT_GE(stepper.run().best_gflops, 20.0);

  while (auto suggestion = stepper.suggest()) {
    stepper.report(
        model.gflops(stepper.param_names(), suggestion->config));
  }
  EXPECT_TRUE(stepper.finished());
  EXPECT_GE(stepper.run().best_gflops, 20.0);
}

TEST(WarmStart, TopKIsConfigurableAndBoundedByCacheSize) {
  const searchspace::SearchSpace space(transfer_spec());
  const searchspace::SubSpace view(space);
  tuner::HotspotModel model;
  const std::uint64_t fp = 43;
  tuner::SharedEvalCache cache;
  cache.insert(fp, 2, {5.0, 0.0});
  cache.insert(fp, 7, {9.0, 0.0});

  tuner::TuningOptions options = fixed_options(5);
  options.warm_start = true;
  options.warm_start_top_k = 16;  // more than the cache holds
  tuner::SessionStats stats;
  const auto run = run_with(view, model, "random-sampling", options, &cache,
                            fp, &stats);
  EXPECT_EQ(stats.seeded_rows, 2u);
  EXPECT_GE(run.best_gflops, 9.0);

  tuner::SessionStats one_stats;
  options.warm_start_top_k = 1;
  run_with(view, model, "random-sampling", options, &cache, fp, &one_stats);
  EXPECT_EQ(one_stats.seeded_rows, 1u);
}

TEST(WarmStart, TransferChangesTheTrajectoryOnceTheCacheHasRows) {
  const searchspace::SearchSpace space(transfer_spec());
  const searchspace::SubSpace view(space);
  tuner::HotspotModel model;
  const std::uint64_t fp = 44;

  tuner::SharedEvalCache cache;
  const auto first = run_with(view, model, "random-sampling",
                              fixed_options(21), &cache, fp);
  ASSERT_GT(cache.size(), 0u);

  tuner::TuningOptions warm_options = fixed_options(22);
  warm_options.warm_start = true;
  tuner::SessionStats stats;
  const auto warm = run_with(view, model, "random-sampling", warm_options,
                             &cache, fp, &stats);
  const auto cold = run_with(view, model, "random-sampling", fixed_options(22));

  EXPECT_GT(stats.seeded_rows, 0u);
  EXPECT_NE(warm.trajectory, cold.trajectory);
  // The warm session starts from the cache's best row, so its first
  // trajectory point is already at the first session's level.
  ASSERT_FALSE(warm.trajectory.empty());
  EXPECT_GE(warm.trajectory.front().best_gflops, first.best_gflops);
  EXPECT_GE(warm.best_gflops, first.best_gflops);
}

// --- SurrogateGuided optimizer ----------------------------------------------

TEST(SurrogateGuided, NamedInThePortfolioAndRepeatRunsAreIdentical) {
  EXPECT_NE(std::find(tuner::optimizer_names().begin(),
                      tuner::optimizer_names().end(), "surrogate"),
            tuner::optimizer_names().end());

  const searchspace::SearchSpace space(transfer_spec());
  const searchspace::SubSpace view(space);
  tuner::HotspotModel model;
  const auto a = run_with(view, model, "surrogate", fixed_options(31));
  const auto b = run_with(view, model, "surrogate", fixed_options(31));
  EXPECT_EQ(a, b);
  EXPECT_GT(a.evaluations, 0u);
  const auto c = run_with(view, model, "surrogate", fixed_options(32));
  EXPECT_NE(a.trajectory, c.trajectory);
}

TEST(SurrogateGuided, RefitsAreCountedAndSeedsTrainTheModel) {
  const searchspace::SearchSpace space(transfer_spec());
  const searchspace::SubSpace view(space);
  tuner::HotspotModel model;
  const std::uint64_t fp = 45;

  tuner::SessionStats cold_stats;
  const auto cold = run_with(view, model, "surrogate", fixed_options(33),
                             nullptr, 0, &cold_stats);
  EXPECT_GT(cold_stats.surrogate_refits, 0u);

  // Seeded observations are free training data: the warm surrogate session
  // still completes, still refits, and starts at the cached best.
  tuner::SharedEvalCache cache;
  const auto first = run_with(view, model, "random-sampling",
                              fixed_options(34), &cache, fp);
  tuner::TuningOptions warm_options = fixed_options(35);
  warm_options.warm_start = true;
  tuner::SessionStats warm_stats;
  const auto warm = run_with(view, model, "surrogate", warm_options, &cache,
                             fp, &warm_stats);
  EXPECT_GT(warm_stats.seeded_rows, 0u);
  EXPECT_GT(warm_stats.surrogate_refits, 0u);
  EXPECT_GE(warm.best_gflops, first.best_gflops);
  (void)cold;
}

// --- TSEC persistence and merge semantics -----------------------------------

TEST(EvalCachePersistence, MergeIsFirstInsertWinsAndOrderIndependent) {
  const auto dir = scratch_dir();
  std::filesystem::create_directories(dir);
  const std::string file_a = (dir / "a.tsv").string();
  const std::string file_b = (dir / "b.tsv").string();

  // Overlapping key (7, 10) carries the *same* value in both files;
  // (7, 11) exists only in A, (7, 12) only in B.
  tuner::SharedEvalCache a;
  a.insert(7, 10, {1.5, 0.5});
  a.insert(7, 11, {2.5, 0.0});
  tuner::SharedEvalCache b;
  b.insert(7, 10, {1.5, 0.5});
  b.insert(7, 12, {3.5, 1.0});
  save_shared_eval_cache(a, file_a);
  save_shared_eval_cache(b, file_b);

  tuner::SharedEvalCache ab, ba;
  EXPECT_EQ(load_shared_eval_cache(ab, file_a), 2u);
  EXPECT_EQ(load_shared_eval_cache(ab, file_b), 2u);
  EXPECT_EQ(load_shared_eval_cache(ba, file_b), 2u);
  EXPECT_EQ(load_shared_eval_cache(ba, file_a), 2u);

  // Identical values for overlapping keys: both load orders converge on
  // the same merged cache.
  EXPECT_EQ(ab.size(), 3u);
  EXPECT_EQ(ba.size(), 3u);
  EXPECT_EQ(ab.entries_for(7), ba.entries_for(7));

  // Conflicting values keep whichever arrived first (SharedEvalCache
  // insert semantics), so load order decides — exactly first-insert-wins.
  tuner::SharedEvalCache c;
  c.insert(7, 10, {9.0, 9.0});
  const std::string file_c = (dir / "c.tsv").string();
  save_shared_eval_cache(c, file_c);
  tuner::SharedEvalCache ac, ca;
  load_shared_eval_cache(ac, file_a);
  load_shared_eval_cache(ac, file_c);
  EXPECT_EQ(ac.lookup(7, 10)->gflops, 1.5);
  load_shared_eval_cache(ca, file_c);
  load_shared_eval_cache(ca, file_a);
  EXPECT_EQ(ca.lookup(7, 10)->gflops, 9.0);

  std::filesystem::remove_all(dir);
}

TEST(EvalCachePersistence, MissingAndForeignFilesLoadAsEmpty) {
  const auto dir = scratch_dir();
  std::filesystem::create_directories(dir);
  tuner::SharedEvalCache cache;
  EXPECT_EQ(load_shared_eval_cache(cache, (dir / "absent.tsv").string()), 0u);
  {
    std::FILE* f = std::fopen((dir / "garbage.tsv").string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a TSEC file\n", f);
    std::fclose(f);
  }
  EXPECT_EQ(load_shared_eval_cache(cache, (dir / "garbage.tsv").string()), 0u);
  EXPECT_EQ(cache.size(), 0u);
  std::filesystem::remove_all(dir);
}

// --- v2 wire fields ---------------------------------------------------------

TEST(TransferWire, OpenSessionRequestCarriesTransferFlags) {
  tuner::OpenSessionRequest request;
  request.kernel = "gemm";
  request.warm_start = true;
  request.surrogate = true;
  EXPECT_EQ(wire::open_session_request_from_json(wire::to_json(request)),
            request);

  // Absent means off: a cold envelope is byte-identical to the
  // pre-transfer wire, and decodes back to the defaults.
  tuner::OpenSessionRequest cold;
  cold.kernel = "gemm";
  const auto encoded = wire::to_json(cold);
  EXPECT_EQ(encoded.find("warm_start"), nullptr);
  EXPECT_EQ(encoded.find("surrogate"), nullptr);
  const auto decoded = wire::open_session_request_from_json(encoded);
  EXPECT_FALSE(decoded.warm_start);
  EXPECT_FALSE(decoded.surrogate);
}

TEST(TransferWire, SessionInfoAndServiceStatsCarryTransferCounters) {
  tuner::SessionInfo info;
  info.session_id = 5;
  info.kernel = "gemm";
  info.seeded_rows = 8;
  info.surrogate_refits = 3;
  EXPECT_EQ(wire::session_info_from_json(wire::to_json(info)), info);

  tuner::ServiceStats stats;
  stats.live_sessions = 1;
  stats.seeded_rows = 16;
  stats.surrogate_refits = 7;
  EXPECT_EQ(wire::service_stats_from_json(wire::to_json(stats)), stats);
}

// --- Service front end ------------------------------------------------------

TEST(ServiceTransfer, WarmRestartSeedsFromThePersistedCache) {
  const auto dir = scratch_dir();
  tuner::TuningServiceOptions service_options;
  service_options.state_dir = dir.string();

  tuner::OpenSessionRequest request;
  request.kernel = "hotspot";
  request.seed = 3;
  request.budget_seconds = 1.0;
  request.fixed_construction_seconds = 0.25;

  const auto* kernel = tuner::find_service_kernel("hotspot");
  ASSERT_NE(kernel, nullptr);
  {
    tuner::TuningService service(service_options);
    const auto opened = service.open(request);
    EXPECT_EQ(opened.info.seeded_rows, 0u);  // nothing persisted yet
    const std::vector<std::string> names = opened.info.param_names;
    while (true) {
      const auto ask = service.suggest({opened.session_id});
      if (ask.finished) break;
      csp::Config config;
      for (const auto& entry : ask.config) config.push_back(entry.value);
      service.report(
          {opened.session_id, kernel->model->gflops(names, config), -1.0});
    }
    service.close({opened.session_id});
    service.save_state();
  }

  tuner::TuningService restarted(service_options);
  request.seed = 4;  // a different trajectory, seeded from the old one
  request.warm_start = true;
  const auto warm = restarted.open(request);
  EXPECT_GT(warm.info.seeded_rows, 0u);
  EXPECT_GT(restarted.stats().seeded_rows, 0u);
  restarted.close({warm.session_id});
  std::filesystem::remove_all(dir);
}

TEST(ServiceTransfer, SurrogateFlagSelectsTheModelBasedOptimizer) {
  tuner::TuningService service;
  tuner::OpenSessionRequest request;
  request.kernel = "hotspot";
  request.seed = 2;
  request.budget_seconds = 1.0;
  request.fixed_construction_seconds = 0.25;
  request.surrogate = true;
  const auto opened = service.open(request);
  EXPECT_EQ(opened.info.optimizer, "surrogate");
  const auto closed = service.close({opened.session_id});
  EXPECT_EQ(closed.run.method_name, "optimized");
}
