// Tests for the wire layer: the JSON document model, the error-code wire
// names, frame framing over an in-memory stream, the api.hpp struct codecs,
// the request/response envelopes, and a loopback client/server integration
// replaying a scripted GEMM session bit-identically against an in-process
// service.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "tunespace/tuner/protocol.hpp"
#include "tunespace/tuner/server.hpp"
#include "tunespace/tuner/service.hpp"
#include "tunespace/tuner/service_client.hpp"
#include "tunespace/util/json.hpp"

using namespace tunespace;
namespace json = util::json;
namespace wire = tuner::wire;

namespace {

ErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ServiceError& e) {
    return e.code();
  }
  return ErrorCode::kOk;
}

/// In-memory ByteStream: writes append, reads consume; honors the framing
/// contract (false on clean EOF at a boundary, kIo on truncation).
class MemoryStream : public wire::ByteStream {
 public:
  void write_all(const void* data, std::size_t n) override {
    buffer_.append(static_cast<const char*>(data), n);
  }
  bool read_all(void* data, std::size_t n) override {
    if (pos_ == buffer_.size()) return false;  // clean EOF
    if (buffer_.size() - pos_ < n) {
      throw ServiceError(ErrorCode::kIo, "truncated stream");
    }
    std::memcpy(data, buffer_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string buffer_;
  std::size_t pos_ = 0;
};

}  // namespace

// --- JSON document model ----------------------------------------------------

TEST(Json, DumpIsCompactDeterministicAndOrdered) {
  json::Value doc = json::Value::object();
  doc.set("b", 1);
  doc.set("a", json::Value::array());
  doc.set("c", "x\"y\n");
  EXPECT_EQ(doc.dump(), "{\"b\":1,\"a\":[],\"c\":\"x\\\"y\\n\"}");
  doc.set("b", 2);  // replaces in place, order preserved
  EXPECT_EQ(doc.dump(), "{\"b\":2,\"a\":[],\"c\":\"x\\\"y\\n\"}");
}

TEST(Json, Int64RoundTripsDigitForDigit) {
  const std::string text = "[9223372036854775807,-9223372036854775808,0]";
  const auto doc = json::Value::parse(text);
  ASSERT_TRUE(doc.is_array());
  EXPECT_TRUE(doc.items()[0].is_int());
  EXPECT_EQ(doc.items()[0].as_int(), INT64_MAX);
  EXPECT_EQ(doc.items()[1].as_int(), INT64_MIN);
  EXPECT_EQ(doc.dump(), text);
}

TEST(Json, DoublesAndIntsAreDistinguished) {
  const auto doc = json::Value::parse("[1, 1.0, 1e2, -0.5]");
  EXPECT_TRUE(doc.items()[0].is_int());
  EXPECT_FALSE(doc.items()[1].is_int());
  EXPECT_TRUE(doc.items()[1].is_number());
  EXPECT_DOUBLE_EQ(doc.items()[2].as_double(), 100.0);
  EXPECT_DOUBLE_EQ(doc.items()[3].as_double(), -0.5);
}

TEST(Json, StringEscapesAndSurrogatePairsParse) {
  const auto doc =
      json::Value::parse("\"a\\u0041\\t\\\\ \\u00e9 \\ud83d\\ude00\"");
  EXPECT_EQ(doc.as_string(), "aA\t\\ \xc3\xa9 \xf0\x9f\x98\x80");
  // Round-trips through dump/parse even with multi-byte UTF-8 inside.
  EXPECT_EQ(json::Value::parse(doc.dump()).as_string(), doc.as_string());
}

TEST(Json, MalformedDocumentsThrowProtocolErrors) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "\"\\u12\"", "nul", "1 2", "{\"a\" 1}",
        "\"unterminated", "[1]extra"}) {
    EXPECT_EQ(code_of([&] { json::Value::parse(bad); }), ErrorCode::kProtocol)
        << "input: " << bad;
  }
}

TEST(Json, LenientReadersTolerateAbsentAndMistypedFields) {
  const auto doc = json::Value::parse("{\"n\":3,\"s\":\"x\"}");
  EXPECT_EQ(doc.at("n").as_int(), 3);
  EXPECT_EQ(doc.at("missing").as_int(7), 7);
  EXPECT_TRUE(doc.at("missing").is_null());
  EXPECT_EQ(doc.at("s").as_int(7), 7);  // wrong kind -> fallback
  EXPECT_EQ(doc.find("missing"), nullptr);
}

// --- Error-code wire names --------------------------------------------------

TEST(ErrorCodes, NamesRoundTripAndUnknownMapsToInternal) {
  for (const auto code :
       {ErrorCode::kOk, ErrorCode::kInvalidArgument, ErrorCode::kUnknownSession,
        ErrorCode::kAdmissionLimit, ErrorCode::kDraining, ErrorCode::kWrongState,
        ErrorCode::kSessionFinished, ErrorCode::kSpaceBuildFailed,
        ErrorCode::kProtocol, ErrorCode::kIo, ErrorCode::kInternal}) {
    EXPECT_EQ(error_code_from_name(error_code_name(code)), code);
  }
  EXPECT_EQ(error_code_from_name("some_future_code"), ErrorCode::kInternal);
}

// --- Framing ----------------------------------------------------------------

TEST(Framing, FramesRoundTripIncludingEmptyPayloads) {
  MemoryStream stream;
  wire::write_frame(stream, "hello");
  wire::write_frame(stream, "");
  wire::write_frame(stream, std::string(100000, 'x'));
  EXPECT_EQ(wire::read_frame(stream).value(), "hello");
  EXPECT_EQ(wire::read_frame(stream).value(), "");
  EXPECT_EQ(wire::read_frame(stream).value().size(), 100000u);
  EXPECT_FALSE(wire::read_frame(stream).has_value());  // clean EOF
}

TEST(Framing, OversizedLengthPrefixIsAProtocolError) {
  MemoryStream stream;
  const std::uint32_t huge = wire::kMaxFrameBytes + 1;
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(huge >> 24), static_cast<unsigned char>(huge >> 16),
      static_cast<unsigned char>(huge >> 8), static_cast<unsigned char>(huge)};
  stream.write_all(prefix, 4);
  EXPECT_EQ(code_of([&] { wire::read_frame(stream); }), ErrorCode::kProtocol);
}

TEST(Framing, TruncatedPayloadIsAnIoError) {
  MemoryStream stream;
  wire::write_frame(stream, "full payload");
  stream.buffer_.resize(stream.buffer_.size() - 3);  // cut mid-payload
  EXPECT_EQ(code_of([&] { wire::read_frame(stream); }), ErrorCode::kIo);
}

// --- Envelopes --------------------------------------------------------------

TEST(Envelope, RequestsCarryTheirOpAndBody) {
  json::Value body = json::Value::object();
  body.set("session_id", std::uint64_t{42});
  const auto frame = wire::encode_request("suggest", body);
  const auto [op, doc] = wire::decode_request(frame);
  EXPECT_EQ(op, "suggest");
  EXPECT_EQ(doc.at("session_id").as_uint(), 42u);
}

TEST(Envelope, RequestWithoutOpIsAProtocolError) {
  EXPECT_EQ(code_of([&] { wire::decode_request("{\"no_op\":1}"); }),
            ErrorCode::kProtocol);
  EXPECT_EQ(code_of([&] { wire::decode_request("[]"); }), ErrorCode::kProtocol);
}

TEST(Envelope, ErrorResponsesRethrowTheCarriedServiceError) {
  const auto frame =
      wire::encode_error(ErrorCode::kAdmissionLimit, "too many sessions");
  try {
    wire::decode_response(frame);
    FAIL() << "error response must throw";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kAdmissionLimit);
    EXPECT_STREQ(e.what(), "too many sessions");
  }
}

TEST(Envelope, OkResponsesReturnTheDocument) {
  json::Value body = json::Value::object();
  body.set("pong", true);
  const auto doc = wire::decode_response(wire::encode_ok(body));
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_TRUE(doc.at("pong").as_bool());
  EXPECT_EQ(code_of([&] { wire::decode_response("{\"no_ok\":1}"); }),
            ErrorCode::kProtocol);
}

// --- api.hpp struct codecs --------------------------------------------------

TEST(Codec, OpenSessionRequestRoundTrips) {
  tuner::OpenSessionRequest request;
  request.tenant = "team-a";
  request.kernel = "gemm";
  request.optimizer = "simulated-annealing";
  request.method = "optimized";
  request.seed = 1234567890123ull;
  request.budget_seconds = 42.5;
  request.overhead_per_request = 0.25;
  request.fixed_construction_seconds = 1.5;
  request.construction_time_scale = 2.0;
  request.restrictions = {{"MWG", {csp::Value(32), csp::Value(64)}},
                          {"SA", {csp::Value(true)}}};
  const auto decoded =
      wire::open_session_request_from_json(wire::to_json(request));
  EXPECT_EQ(decoded, request);
}

TEST(Codec, ConfigsCrossTheWireInOrderWithExactValues) {
  const std::vector<tuner::NamedValue> config = {
      {"block_size_x", csp::Value(128)},
      {"scale", csp::Value(0.5)},
      {"use_sh", csp::Value(true)},
      {"variant", csp::Value(std::string("tiled"))},
  };
  const auto doc = wire::config_to_json(config);
  EXPECT_EQ(doc.dump(),
            "{\"block_size_x\":128,\"scale\":0.5,\"use_sh\":true,"
            "\"variant\":\"tiled\"}");
  EXPECT_EQ(wire::config_from_json(json::Value::parse(doc.dump())), config);
}

TEST(Codec, ResponsesRoundTrip) {
  tuner::SuggestResponse suggest;
  suggest.session_id = 9;
  suggest.config_id = 4;
  suggest.parent_row = 17;
  suggest.config = {{"p", csp::Value(3)}};
  suggest.now_seconds = 1.25;
  suggest.evaluations = 6;
  EXPECT_EQ(wire::suggest_response_from_json(wire::to_json(suggest)), suggest);

  tuner::ReportRequest report;
  report.session_id = 9;
  report.gflops = 123.456;
  report.measure_seconds = 0.75;
  EXPECT_EQ(wire::report_request_from_json(wire::to_json(report)), report);

  tuner::RunSummary run;
  run.method_name = "optimized";
  run.construction_seconds = 0.5;
  run.budget_seconds = 2.0;
  run.best_gflops = 2857.399;
  run.evaluations = 4;
  run.trajectory = {{0.6, 100.0, 1}, {1.9, 2857.399, 4}};
  EXPECT_EQ(wire::run_summary_from_json(wire::to_json(run)), run);

  tuner::ServiceStats stats;
  stats.live_sessions = 2;
  stats.total_opened = 5;
  stats.total_closed = 3;
  stats.total_rejected = 1;
  stats.draining = true;
  stats.cache_entries = 40;
  stats.cache_hits = 7;
  stats.cache_misses = 33;
  stats.spaces_built = 1;
  stats.spaces_shared = 4;
  EXPECT_EQ(wire::service_stats_from_json(wire::to_json(stats)), stats);
}

TEST(Codec, SessionInfoRoundTrips) {
  tuner::SessionInfo info;
  info.session_id = 3;
  info.tenant = "t";
  info.kernel = "hotspot";
  info.optimizer = "random-sampling";
  info.method = "optimized";
  info.space_rows = 800;
  info.param_names = {"a", "b"};
  info.shared_space = true;
  info.awaiting_report = true;
  info.finished = false;
  info.now_seconds = 3.5;
  info.budget_seconds = 10.0;
  info.best_gflops = 55.5;
  info.evaluations = 12;
  info.shared_cache_hits = 4;
  info.model_evaluations = 8;
  EXPECT_EQ(wire::session_info_from_json(wire::to_json(info)), info);
}

// --- Loopback integration ---------------------------------------------------

namespace {

/// Drive one scripted GEMM session over the wire, answering every suggestion
/// with the local model; returns the closed run summary.
tuner::RunSummary drive_over_wire(tuner::ServiceClient& client,
                                  const tuner::OpenSessionRequest& request) {
  const auto* kernel = tuner::find_service_kernel(request.kernel);
  const auto opened = client.open(request);
  while (true) {
    const auto ask = client.suggest(opened.session_id);
    if (ask.finished) break;
    csp::Config config;
    for (const auto& entry : ask.config) config.push_back(entry.value);
    client.report({opened.session_id,
                   kernel->model->gflops(opened.info.param_names, config), -1.0});
  }
  return client.close_session(opened.session_id).run;
}

tuner::OpenSessionRequest scripted_gemm() {
  tuner::OpenSessionRequest request;
  request.kernel = "gemm";
  request.seed = 5;
  request.budget_seconds = 2.0;
  request.fixed_construction_seconds = 0.5;
  return request;
}

}  // namespace

TEST(Loopback, ScriptedSessionOverTcpMatchesInProcessBitForBit) {
  // The reference: the same session driven directly against a fresh service.
  tuner::RunSummary reference;
  {
    tuner::TuningService local;
    const auto* kernel = tuner::find_service_kernel("gemm");
    const auto opened = local.open(scripted_gemm());
    while (true) {
      const auto ask = local.suggest({opened.session_id});
      if (ask.finished) break;
      csp::Config config;
      for (const auto& entry : ask.config) config.push_back(entry.value);
      local.report({opened.session_id,
                    kernel->model->gflops(opened.info.param_names, config),
                    -1.0});
    }
    reference = local.close({opened.session_id}).run;
    EXPECT_GT(reference.evaluations, 0u);
  }

  tuner::TuningService service;
  tuner::ServiceServerOptions server_options;
  server_options.port = 0;  // ephemeral
  tuner::ServiceServer server(service, server_options);
  server.start();

  tuner::ServiceClientOptions client_options;
  client_options.port = server.port();
  tuner::ServiceClient client(client_options);
  ASSERT_TRUE(client.ping());

  const auto over_wire = drive_over_wire(client, scripted_gemm());
  EXPECT_EQ(over_wire, reference);

  // Stats crossed the wire too.
  const auto stats = client.stats();
  EXPECT_EQ(stats.total_opened, 1u);
  EXPECT_EQ(stats.total_closed, 1u);

  server.stop();
}

TEST(Loopback, DrainOverTheWireRejectsSubsequentOpens) {
  tuner::TuningService service;
  tuner::ServiceServerOptions server_options;
  server_options.port = 0;
  tuner::ServiceServer server(service, server_options);
  server.start();

  tuner::ServiceClientOptions client_options;
  client_options.port = server.port();
  tuner::ServiceClient client(client_options);

  const auto drained = client.drain({true, 10.0});
  EXPECT_TRUE(drained.draining);
  EXPECT_TRUE(drained.drained);
  EXPECT_EQ(drained.live_sessions, 0u);
  // The remote kDraining arrives as the same typed error a local call throws.
  EXPECT_EQ(code_of([&] { client.open(scripted_gemm()); }),
            ErrorCode::kDraining);

  server.stop();
}

TEST(Loopback, ReconnectingClientResumesItsSessionById) {
  tuner::TuningService service;
  tuner::ServiceServerOptions server_options;
  server_options.port = 0;
  tuner::ServiceServer server(service, server_options);
  server.start();

  tuner::ServiceClientOptions client_options;
  client_options.port = server.port();
  const auto* kernel = tuner::find_service_kernel("gemm");

  std::uint64_t session_id = 0;
  std::vector<std::string> names;
  {
    tuner::ServiceClient first(client_options);
    const auto opened = first.open(scripted_gemm());
    session_id = opened.session_id;
    names = opened.info.param_names;
    const auto ask = first.suggest(session_id);
    ASSERT_FALSE(ask.finished);
    csp::Config config;
    for (const auto& entry : ask.config) config.push_back(entry.value);
    first.report({session_id, kernel->model->gflops(names, config), -1.0});
  }  // connection drops; the session stays live on the server

  tuner::ServiceClient second(client_options);
  const auto info = second.info(session_id);
  EXPECT_EQ(info.evaluations, 1u);
  while (true) {
    const auto ask = second.suggest(session_id);
    if (ask.finished) break;
    csp::Config config;
    for (const auto& entry : ask.config) config.push_back(entry.value);
    second.report({session_id, kernel->model->gflops(names, config), -1.0});
  }
  const auto closed = second.close_session(session_id);
  EXPECT_GT(closed.run.evaluations, 1u);

  server.stop();
}
