#pragma once
// Seeded random TuningProblem generator + a tiny text serialization, shared
// by the differential fuzz wall (test_fuzz_differential.cpp) and its
// reproduction workflow (see CONTRIBUTING.md).
//
// Every spec is a pure function of its seed: integer domains drawn from a
// few realistic families (powers of two, contiguous ranges, strided ranges,
// small sets that may include zero), plus constraints drawn from two pools —
// builtin-recognizable shapes (products, sums, comparison chains,
// divisibility) and generic expression shapes that exercise the compiled /
// interpreted fallback paths (modulo arithmetic, floor division,
// disjunctions).  Constants are calibrated from randomly-drawn domain values
// so constraints stay neither trivially true nor trivially false.
//
// When a fuzz iteration fails, the harness serializes the offending spec
// with write_spec() and prints the seed; read_spec() loads such a file back
// for a focused reproduction.

#include <cstdint>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "tunespace/csp/value.hpp"
#include "tunespace/tuner/tuning_problem.hpp"
#include "tunespace/util/rng.hpp"

namespace tunespace::testsupport {

struct SpecGenOptions {
  std::size_t min_params = 2;
  std::size_t max_params = 5;
  std::size_t min_domain = 2;
  std::size_t max_domain = 8;
  /// Probability that each candidate constraint slot (there are
  /// num_params + 1 of them) is filled — 0 yields pure Cartesian products,
  /// 1 yields densely-constrained spaces.
  double constraint_density = 0.7;
  /// Fraction of constraints drawn from the generic-expression pool instead
  /// of the builtin-recognizable pool.
  double expression_fraction = 0.4;
  /// Domains are trimmed (largest first) until the Cartesian product fits;
  /// keeps the brute-force oracle cheap.
  std::uint64_t max_cartesian = 20000;
};

namespace detail {

inline std::vector<std::int64_t> random_domain(util::Rng& rng,
                                               const SpecGenOptions& opt) {
  const std::size_t count =
      opt.min_domain + rng.index(opt.max_domain - opt.min_domain + 1);
  std::vector<std::int64_t> values;
  switch (rng.index(4)) {
    case 0: {  // powers of two
      std::int64_t v = rng.chance(0.5) ? 1 : 2;
      for (std::size_t i = 0; i < count; ++i, v *= 2) values.push_back(v);
      break;
    }
    case 1: {  // contiguous range
      const std::int64_t lo = static_cast<std::int64_t>(rng.index(5));
      for (std::size_t i = 0; i < count; ++i) {
        values.push_back(lo + static_cast<std::int64_t>(i));
      }
      break;
    }
    case 2: {  // strided range
      const std::int64_t lo = 1 + static_cast<std::int64_t>(rng.index(4));
      const std::int64_t stride = 2 + static_cast<std::int64_t>(rng.index(4));
      for (std::size_t i = 0; i < count; ++i) {
        values.push_back(lo + stride * static_cast<std::int64_t>(i));
      }
      break;
    }
    default: {  // small set, occasionally with zero
      std::int64_t v = rng.chance(0.25) ? 0 : 1;
      for (std::size_t i = 0; i < count; ++i) {
        values.push_back(v);
        v += 1 + static_cast<std::int64_t>(rng.index(6));
      }
      break;
    }
  }
  return values;
}

/// A value of parameter `p` drawn uniformly from its generated domain.
inline std::int64_t pick_value(util::Rng& rng,
                               const std::vector<std::vector<std::int64_t>>& domains,
                               std::size_t p) {
  return domains[p][rng.index(domains[p].size())];
}

inline std::string builtin_constraint(
    util::Rng& rng, const std::vector<std::string>& names,
    const std::vector<std::vector<std::int64_t>>& domains) {
  const std::size_t a = rng.index(names.size());
  std::size_t b = rng.index(names.size());
  if (names.size() > 1) {
    while (b == a) b = rng.index(names.size());
  }
  // Calibrate constants from a sampled configuration so the constraint is
  // satisfiable but not vacuous.
  const std::int64_t va = pick_value(rng, domains, a);
  const std::int64_t vb = pick_value(rng, domains, b);
  std::ostringstream os;
  switch (rng.index(8)) {
    case 0: os << names[a] << " * " << names[b] << " <= " << va * vb; break;
    case 1: os << names[a] << " * " << names[b] << " >= " << va * vb; break;
    case 2: os << names[a] << " + " << names[b] << " <= " << va + vb; break;
    case 3: os << names[a] << " + " << names[b] << " >= " << va + vb; break;
    case 4:
      os << std::min(va, vb) * std::max(va, vb) / 2 << " <= " << names[a]
         << " * " << names[b] << " <= " << va * vb + 16;
      break;
    case 5: os << names[a] << " % " << names[b] << " == 0"; break;
    case 6: os << names[a] << " <= " << names[b]; break;
    default: os << names[a] << " != " << names[b]; break;
  }
  return os.str();
}

inline std::string expression_constraint(
    util::Rng& rng, const std::vector<std::string>& names,
    const std::vector<std::vector<std::int64_t>>& domains) {
  const std::size_t a = rng.index(names.size());
  std::size_t b = rng.index(names.size());
  if (names.size() > 1) {
    while (b == a) b = rng.index(names.size());
  }
  const std::size_t c = rng.index(names.size());
  const std::int64_t va = pick_value(rng, domains, a);
  const std::int64_t vb = pick_value(rng, domains, b);
  const std::int64_t vc = pick_value(rng, domains, c);
  const std::int64_t m = 2 + static_cast<std::int64_t>(rng.index(4));
  std::ostringstream os;
  switch (rng.index(6)) {
    case 0:
      os << "(" << names[a] << " * 2 + " << names[b] << ") % " << m
         << " != " << rng.index(static_cast<std::size_t>(m));
      break;
    case 1:
      os << names[a] << " * " << names[b] << " + " << names[c]
         << " <= " << va * vb + vc;
      break;
    case 2:
      // Floor division; a zero divisor raises EvalError, which every engine
      // must treat as "configuration invalid".
      os << names[a] << " // " << names[b] << " <= " << (vb != 0 ? va / vb : va);
      break;
    case 3:
      os << names[a] << " <= " << va << " or " << names[b] << " >= " << vb;
      break;
    case 4: os << "(" << names[a] << " + " << names[b] << ") % 2 == 0"; break;
    default:
      os << names[a] << " * " << names[a] << " <= " << va * va + vb * vb;
      break;
  }
  return os.str();
}

}  // namespace detail

/// The random spec for `seed` (pure: same seed, same spec).
inline tuner::TuningProblem random_spec(std::uint64_t seed,
                                        const SpecGenOptions& opt = {}) {
  util::Rng rng(seed ^ 0xF7A3C591D2E48B06ULL);
  const std::size_t num_params =
      opt.min_params + rng.index(opt.max_params - opt.min_params + 1);

  std::vector<std::string> names;
  std::vector<std::vector<std::int64_t>> domains;
  for (std::size_t p = 0; p < num_params; ++p) {
    names.push_back("p" + std::to_string(p));
    domains.push_back(detail::random_domain(rng, opt));
  }
  // Trim the largest domains until the Cartesian product fits the oracle.
  for (;;) {
    std::uint64_t cartesian = 1;
    for (const auto& d : domains) cartesian *= d.size();
    if (cartesian <= opt.max_cartesian) break;
    std::size_t largest = 0;
    for (std::size_t p = 1; p < domains.size(); ++p) {
      if (domains[p].size() > domains[largest].size()) largest = p;
    }
    domains[largest].pop_back();
  }

  tuner::TuningProblem spec("fuzz-" + std::to_string(seed));
  for (std::size_t p = 0; p < num_params; ++p) {
    spec.add_param(names[p], domains[p]);
  }
  for (std::size_t slot = 0; slot < num_params + 1; ++slot) {
    if (!rng.chance(opt.constraint_density)) continue;
    spec.add_constraint(rng.chance(opt.expression_fraction)
                            ? detail::expression_constraint(rng, names, domains)
                            : detail::builtin_constraint(rng, names, domains));
  }
  return spec;
}

/// Serialize a generated spec as line-oriented text:
///   name <spec name>
///   param <name> <v1> <v2> ...
///   constraint <expression until end of line>
inline std::string write_spec(const tuner::TuningProblem& spec) {
  std::ostringstream os;
  os << "name " << spec.name() << "\n";
  for (const auto& param : spec.params()) {
    os << "param " << param.name;
    for (const auto& value : param.values) os << " " << value.as_int();
    os << "\n";
  }
  for (const auto& constraint : spec.constraints()) {
    os << "constraint " << constraint << "\n";
  }
  return os.str();
}

/// Parse the write_spec() format back into a spec (integer domains only).
/// Throws std::runtime_error on a malformed line.
inline tuner::TuningProblem read_spec(std::istream& is) {
  tuner::TuningProblem spec;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "name") {
      std::string name;
      ls >> name;
      spec = tuner::TuningProblem(name);
    } else if (kind == "param") {
      std::string name;
      if (!(ls >> name)) throw std::runtime_error("spec: param without a name");
      std::vector<std::int64_t> values;
      std::int64_t v = 0;
      while (ls >> v) values.push_back(v);
      if (values.empty()) throw std::runtime_error("spec: empty domain " + name);
      spec.add_param(name, values);
    } else if (kind == "constraint") {
      std::string rest;
      std::getline(ls, rest);
      const std::size_t at = rest.find_first_not_of(' ');
      if (at == std::string::npos) throw std::runtime_error("spec: empty constraint");
      spec.add_constraint(rest.substr(at));
    } else {
      throw std::runtime_error("spec: unknown line kind '" + kind + "'");
    }
  }
  return spec;
}

inline tuner::TuningProblem read_spec_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("spec: cannot open " + path);
  return read_spec(is);
}

}  // namespace tunespace::testsupport
