// Tests for the builtin specific constraints: semantics, partial
// consistency, and the preprocessing-soundness property (pruning never
// removes a value that appears in a satisfying assignment).
#include <gtest/gtest.h>

#include "tunespace/csp/builtin_constraints.hpp"
#include "tunespace/util/rng.hpp"

using namespace tunespace::csp;

namespace {

// Bind a constraint over a dense [0..n) index space and prepare it.
void bind_and_prepare(Constraint& c, std::vector<Domain>& domains) {
  std::vector<std::uint32_t> idx;
  for (std::uint32_t i = 0; i < c.scope().size(); ++i) idx.push_back(i);
  c.bind(idx);
  std::vector<const Domain*> ptrs;
  for (const auto& d : domains) ptrs.push_back(&d);
  c.prepare(ptrs);
}

}  // namespace

TEST(ProductConstraintTest, SatisfiedSemantics) {
  MaxProduct c(1024, {"x", "y"});
  std::vector<Domain> doms{Domain::powers(1, 1024), Domain::powers(1, 1024)};
  bind_and_prepare(c, doms);
  Value v1[] = {Value(32), Value(32)};
  EXPECT_TRUE(c.satisfied(v1));
  Value v2[] = {Value(64), Value(32)};
  EXPECT_FALSE(c.satisfied(v2));
}

TEST(ProductConstraintTest, PartialPruningMaxProduct) {
  MaxProduct c(100, {"x", "y"});
  std::vector<Domain> doms{Domain::range(1, 50), Domain::range(2, 10)};
  bind_and_prepare(c, doms);
  ASSERT_TRUE(c.prunes_partial());
  // x = 51 alone already exceeds 100 with min(y) = 2.
  Value values[] = {Value(51), Value()};
  unsigned char assigned[] = {1, 0};
  EXPECT_FALSE(c.consistent(values, assigned));
  values[0] = Value(50);
  EXPECT_TRUE(c.consistent(values, assigned));
}

TEST(ProductConstraintTest, PartialPruningMinProduct) {
  MinProduct c(100, {"x", "y"});
  std::vector<Domain> doms{Domain::range(1, 50), Domain::range(1, 4)};
  bind_and_prepare(c, doms);
  // x = 10: even with max(y) = 4, product 40 < 100.
  Value values[] = {Value(10), Value()};
  unsigned char assigned[] = {1, 0};
  EXPECT_FALSE(c.consistent(values, assigned));
  values[0] = Value(30);
  EXPECT_TRUE(c.consistent(values, assigned));
}

TEST(ProductConstraintTest, NonPositiveDomainsDisablePartial) {
  MaxProduct c(10, {"x", "y"});
  std::vector<Domain> doms{Domain::range(-5, 5), Domain::range(1, 4)};
  bind_and_prepare(c, doms);
  EXPECT_FALSE(c.prunes_partial());
  // Partial check must stay conservative.
  Value values[] = {Value(-5), Value()};
  unsigned char assigned[] = {1, 0};
  EXPECT_TRUE(c.consistent(values, assigned));
}

TEST(ProductConstraintTest, PreprocessPrunesDomains) {
  MaxProduct c(64, {"x", "y"});
  std::vector<Domain> doms{Domain::powers(1, 1024), Domain::powers(4, 64)};
  std::vector<Domain*> ptrs{&doms[0], &doms[1]};
  ASSERT_TRUE(c.preprocess(ptrs));
  // With min(y) = 4, x cannot exceed 16.
  EXPECT_EQ(doms[0].max_value(), Value(16));
}

TEST(ProductConstraintTest, PreprocessDetectsUnsat) {
  MinProduct c(1000000, {"x", "y"});
  std::vector<Domain> doms{Domain::range(1, 10), Domain::range(1, 10)};
  std::vector<Domain*> ptrs{&doms[0], &doms[1]};
  EXPECT_FALSE(c.preprocess(ptrs));
}

TEST(SumConstraintTest, WeightedSemantics) {
  MaxSum c(20, {"x", "y"}, {2.0, 3.0});
  std::vector<Domain> doms{Domain::range(0, 10), Domain::range(0, 10)};
  bind_and_prepare(c, doms);
  Value v1[] = {Value(4), Value(4)};
  EXPECT_TRUE(c.satisfied(v1));  // 8 + 12 = 20 <= 20
  Value v2[] = {Value(5), Value(4)};
  EXPECT_FALSE(c.satisfied(v2));  // 22 > 20
}

TEST(SumConstraintTest, NegativeWeightsPartialBoundsAreSound) {
  // x - y >= 3 with x in [0,5], y in [0,5].
  MinSum c(3, {"x", "y"}, {1.0, -1.0});
  std::vector<Domain> doms{Domain::range(0, 5), Domain::range(0, 5)};
  bind_and_prepare(c, doms);
  // x = 2: best case 2 - 0 = 2 < 3 -> inconsistent.
  Value values[] = {Value(2), Value()};
  unsigned char assigned[] = {1, 0};
  EXPECT_FALSE(c.consistent(values, assigned));
  values[0] = Value(3);
  EXPECT_TRUE(c.consistent(values, assigned));
}

TEST(SumConstraintTest, PreprocessPrunes) {
  MaxSum c(6, {"x", "y"});
  std::vector<Domain> doms{Domain::range(1, 10), Domain::range(2, 10)};
  std::vector<Domain*> ptrs{&doms[0], &doms[1]};
  ASSERT_TRUE(c.preprocess(ptrs));
  EXPECT_EQ(doms[0].max_value(), Value(4));  // 4 + min(y)=2 <= 6
  EXPECT_EQ(doms[1].max_value(), Value(5));
}

TEST(VarComparisonTest, Semantics) {
  VarComparison c("a", CmpOp::Lt, "b");
  std::vector<Domain> doms{Domain::range(1, 5), Domain::range(1, 5)};
  bind_and_prepare(c, doms);
  Value v1[] = {Value(2), Value(3)};
  EXPECT_TRUE(c.satisfied(v1));
  Value v2[] = {Value(3), Value(3)};
  EXPECT_FALSE(c.satisfied(v2));
}

TEST(VarComparisonTest, PreprocessLt) {
  VarComparison c("a", CmpOp::Lt, "b");
  std::vector<Domain> doms{Domain::range(1, 10), Domain::range(1, 5)};
  std::vector<Domain*> ptrs{&doms[0], &doms[1]};
  ASSERT_TRUE(c.preprocess(ptrs));
  EXPECT_EQ(doms[0].max_value(), Value(4));  // a < max(b)=5
  EXPECT_EQ(doms[1].min_value(), Value(2));  // b > min(a)=1
}

TEST(VarComparisonTest, PreprocessEqIntersects) {
  VarComparison c("a", CmpOp::Eq, "b");
  std::vector<Domain> doms{Domain({Value(1), Value(2), Value(3)}),
                           Domain({Value(2), Value(3), Value(4)})};
  std::vector<Domain*> ptrs{&doms[0], &doms[1]};
  ASSERT_TRUE(c.preprocess(ptrs));
  EXPECT_EQ(doms[0].size(), 2u);
  EXPECT_EQ(doms[1].size(), 2u);
}

TEST(DivisibilityTest, VariableDivisor) {
  Divisibility c("a", "b");
  std::vector<Domain> doms{Domain::range(1, 16), Domain::range(1, 16)};
  bind_and_prepare(c, doms);
  Value v1[] = {Value(12), Value(4)};
  EXPECT_TRUE(c.satisfied(v1));
  Value v2[] = {Value(12), Value(5)};
  EXPECT_FALSE(c.satisfied(v2));
}

TEST(DivisibilityTest, ConstantDivisorPreprocess) {
  Divisibility c("a", std::int64_t{4});
  std::vector<Domain> doms{Domain::range(1, 16)};
  std::vector<Domain*> ptrs{&doms[0]};
  ASSERT_TRUE(c.preprocess(ptrs));
  EXPECT_EQ(doms[0].size(), 4u);  // 4, 8, 12, 16
}

TEST(InSetTest, PreprocessFilters) {
  InSet c("x", {Value(2), Value(8)});
  std::vector<Domain> doms{Domain::powers(1, 16)};
  std::vector<Domain*> ptrs{&doms[0]};
  ASSERT_TRUE(c.preprocess(ptrs));
  EXPECT_EQ(doms[0].size(), 2u);
}

TEST(InSetTest, NegatedPreprocess) {
  InSet c("x", {Value(2), Value(8)}, /*negated=*/true);
  std::vector<Domain> doms{Domain::powers(1, 16)};
  std::vector<Domain*> ptrs{&doms[0]};
  ASSERT_TRUE(c.preprocess(ptrs));
  EXPECT_EQ(doms[0].size(), 3u);  // 1, 4, 16
}

TEST(AllDifferentTest, PartialConsistency) {
  AllDifferent c({"a", "b", "c"});
  std::vector<Domain> doms(3, Domain::range(1, 3));
  bind_and_prepare(c, doms);
  Value values[] = {Value(1), Value(1), Value()};
  unsigned char assigned[] = {1, 1, 0};
  EXPECT_FALSE(c.consistent(values, assigned));
  values[1] = Value(2);
  EXPECT_TRUE(c.consistent(values, assigned));
}

TEST(AllEqualTest, Semantics) {
  AllEqual c({"a", "b"});
  std::vector<Domain> doms(2, Domain::range(1, 3));
  bind_and_prepare(c, doms);
  Value v1[] = {Value(2), Value(2)};
  EXPECT_TRUE(c.satisfied(v1));
  Value v2[] = {Value(2), Value(3)};
  EXPECT_FALSE(c.satisfied(v2));
}

TEST(ConstBoolTest, Behaviour) {
  ConstBool t(true), f(false);
  EXPECT_TRUE(t.satisfied(nullptr));
  EXPECT_FALSE(f.satisfied(nullptr));
  std::vector<Domain*> none;
  EXPECT_TRUE(t.preprocess(none));
  EXPECT_FALSE(f.preprocess(none));
}

// --- Preprocessing soundness property ---------------------------------------
// For random product/sum constraints over random domains, preprocessing must
// never remove a value that participates in any satisfying assignment.
class PreprocessSoundness : public ::testing::TestWithParam<int> {};

TEST_P(PreprocessSoundness, NeverRemovesSupportedValues) {
  tunespace::util::Rng rng(500 + static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 30; ++iter) {
    const bool product = rng.chance(0.5);
    const CmpOp op =
        std::array{CmpOp::Le, CmpOp::Ge, CmpOp::Eq}[rng.index(3)];
    std::vector<Domain> doms;
    const std::size_t nvars = 2 + rng.index(2);
    for (std::size_t i = 0; i < nvars; ++i) {
      std::vector<Value> vals;
      const std::size_t n = 2 + rng.index(6);
      for (std::size_t k = 0; k < n; ++k) vals.emplace_back(rng.uniform_int(1, 12));
      doms.emplace_back(std::move(vals));
    }
    const double bound = static_cast<double>(rng.uniform_int(1, 100));
    std::vector<std::string> scope;
    for (std::size_t i = 0; i < nvars; ++i) scope.push_back("v" + std::to_string(i));
    std::unique_ptr<Constraint> c;
    if (product) c = std::make_unique<ProductConstraint>(op, bound, scope);
    else c = std::make_unique<SumConstraint>(op, bound, scope);
    std::vector<std::uint32_t> idx;
    for (std::uint32_t i = 0; i < nvars; ++i) idx.push_back(i);
    c->bind(idx);

    // Reference: for each variable, the set of values with support.
    auto supported = [&](std::size_t var, const Value& v) {
      std::vector<std::size_t> counters(nvars, 0);
      for (;;) {
        std::vector<Value> assignment;
        for (std::size_t i = 0; i < nvars; ++i) {
          assignment.push_back(doms[i][counters[i]]);
        }
        assignment[var] = v;
        if (c->satisfied(assignment.data())) return true;
        std::size_t i = 0;
        for (; i < nvars; ++i) {
          if (++counters[i] < doms[i].size()) break;
          counters[i] = 0;
        }
        if (i == nvars) return false;
      }
    };

    std::vector<Domain> pruned = doms;
    std::vector<Domain*> ptrs;
    for (auto& d : pruned) ptrs.push_back(&d);
    c->preprocess(ptrs);
    for (std::size_t var = 0; var < nvars; ++var) {
      for (const Value& v : doms[var].values()) {
        if (supported(var, v)) {
          EXPECT_TRUE(pruned[var].contains(v))
              << c->describe() << " wrongly pruned " << v.to_string();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreprocessSoundness, ::testing::Range(0, 6));
