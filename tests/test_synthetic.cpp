// Tests for the synthetic search-space generator (§5.2.1).
#include <gtest/gtest.h>

#include <cmath>

#include "tunespace/spaces/synthetic.hpp"
#include "tunespace/tuner/pipeline.hpp"

using namespace tunespace;

TEST(SyntheticGenerator, SuiteHas78Spaces) {
  auto suite = spaces::synthetic_suite();
  EXPECT_EQ(suite.size(), 78u);
}

TEST(SyntheticGenerator, Deterministic) {
  auto a = spaces::synthetic_suite();
  auto b = spaces::synthetic_suite();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].spec.cartesian_size(), b[i].spec.cartesian_size());
    EXPECT_EQ(a[i].spec.constraints(), b[i].spec.constraints());
  }
}

TEST(SyntheticGenerator, DimensionAndConstraintRanges) {
  for (const auto& s : spaces::synthetic_suite()) {
    EXPECT_GE(s.dims, 2u);
    EXPECT_LE(s.dims, 5u);
    EXPECT_GE(s.num_constraints, 1u);
    EXPECT_LE(s.num_constraints, 6u);
    EXPECT_EQ(s.spec.num_params(), s.dims);
    EXPECT_EQ(s.spec.constraints().size(), s.num_constraints);
  }
}

TEST(SyntheticGenerator, CartesianSizesNearTargets) {
  for (const auto& s : spaces::synthetic_suite()) {
    const double realized = static_cast<double>(s.spec.cartesian_size());
    const double target = static_cast<double>(s.target_cartesian);
    // Rounding the per-dimension counts keeps the realized size within ~25%.
    EXPECT_GT(realized, target * 0.75) << s.name;
    EXPECT_LT(realized, target * 1.35) << s.name;
  }
}

TEST(SyntheticGenerator, ValuesPerDimensionApproximatelyUniform) {
  for (const auto& s : spaces::synthetic_suite()) {
    const double expected =
        std::pow(static_cast<double>(s.target_cartesian),
                 1.0 / static_cast<double>(s.dims));
    for (const auto& p : s.spec.params()) {
      EXPECT_GT(static_cast<double>(p.values.size()), expected * 0.5) << s.name;
      EXPECT_LT(static_cast<double>(p.values.size()), expected * 1.5) << s.name;
    }
  }
}

TEST(SyntheticGenerator, SizeScaleReducesTargets) {
  auto reduced = spaces::synthetic_suite({2025, 0.1});
  auto normal = spaces::synthetic_suite({2025, 1.0});
  ASSERT_EQ(reduced.size(), normal.size());
  for (std::size_t i = 0; i < reduced.size(); ++i) {
    EXPECT_LE(reduced[i].spec.cartesian_size(), normal[i].spec.cartesian_size());
  }
  // Overall about one order of magnitude smaller.
  double ratio_sum = 0;
  for (std::size_t i = 0; i < reduced.size(); ++i) {
    ratio_sum += static_cast<double>(reduced[i].spec.cartesian_size()) /
                 static_cast<double>(normal[i].spec.cartesian_size());
  }
  EXPECT_LT(ratio_sum / static_cast<double>(reduced.size()), 0.2);
}

TEST(SyntheticGenerator, SpacesAreNonEmptyAndConstrained) {
  // Solve a subset (every 7th space) and check the Fig. 2 profile: valid
  // count below Cartesian size but not zero.
  auto suite = spaces::synthetic_suite();
  auto methods = tuner::construction_methods(false);
  for (std::size_t i = 0; i < suite.size(); i += 7) {
    auto result = tuner::construct(suite[i].spec, methods[0]);
    EXPECT_GT(result.solutions.size(), 0u) << suite[i].name;
    EXPECT_LT(result.solutions.size(), suite[i].spec.cartesian_size())
        << suite[i].name;
  }
}

TEST(SyntheticGenerator, SeedChangesConstraints) {
  auto a = spaces::make_synthetic(3, 10000, 3, 1);
  auto b = spaces::make_synthetic(3, 10000, 3, 2);
  EXPECT_NE(a.spec.constraints(), b.spec.constraints());
}
