// Randomized differential fuzz wall: every generated spec is solved by all
// six engines (optimized, ATF, original, brute-force, pyATF, blocking-smt)
// and compared row-for-row against an independent brute-force oracle that
// interprets the *unlowered* constraint expressions.  Any disagreement
// prints the seed and serializes the offending spec so the failure is
// reproducible offline (see CONTRIBUTING.md, "Reproducing a fuzz failure").
//
// Environment knobs (all optional; used by the nightly fuzz CI job):
//   TUNESPACE_FUZZ_SEED_BASE     first seed (default 1)
//   TUNESPACE_FUZZ_SEED_COUNT    seeds to run (default 50)
//   TUNESPACE_FUZZ_WALL_SECONDS  wall-clock cap; stop starting new seeds
//                                after this many seconds (default 0 = off)
//   TUNESPACE_FUZZ_DIR           failing-spec output dir (default
//                                "fuzz_failures", relative to the cwd)
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/spec_gen.hpp"
#include "tunespace/expr/function_constraint.hpp"
#include "tunespace/expr/interpreter.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/tuner/pipeline.hpp"
#include "tunespace/util/rng.hpp"
#include "tunespace/util/timer.hpp"

using namespace tunespace;

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* text = std::getenv(name);
  return text ? std::strtoull(text, nullptr, 10) : fallback;
}

/// Independent oracle: enumerate the Cartesian product in lexicographic
/// order and keep every configuration whose *original* (unlowered)
/// constraint expressions all interpret to true.  A raised EvalError means
/// "configuration invalid" — the semantics every engine must share.
std::vector<std::vector<std::uint32_t>> oracle_rows(
    const tuner::TuningProblem& spec) {
  std::vector<expr::AstPtr> asts;
  asts.reserve(spec.constraints().size());
  for (const auto& text : spec.constraints()) asts.push_back(expr::parse(text));

  const auto& params = spec.params();
  std::vector<std::uint32_t> idx(params.size(), 0);
  const expr::Env env = [&](const std::string& name) -> csp::Value {
    for (std::size_t p = 0; p < params.size(); ++p) {
      if (params[p].name == name) return params[p].values[idx[p]];
    }
    throw expr::EvalError("unknown variable " + name);
  };

  std::vector<std::vector<std::uint32_t>> rows;
  for (;;) {
    bool valid = true;
    for (const auto& ast : asts) {
      try {
        if (!expr::eval_bool(*ast, env)) {
          valid = false;
          break;
        }
      } catch (const expr::EvalError&) {
        valid = false;
        break;
      }
    }
    if (valid) rows.push_back(idx);
    // Mixed-radix increment, last parameter fastest => lexicographic order.
    std::size_t p = params.size();
    while (p > 0) {
      --p;
      if (++idx[p] < params[p].values.size()) break;
      idx[p] = 0;
      if (p == 0) return rows;
    }
  }
}

/// Serialize the offending spec and return the file path (best effort).
std::string dump_failing_spec(const tuner::TuningProblem& spec,
                              std::uint64_t seed) {
  const char* env_dir = std::getenv("TUNESPACE_FUZZ_DIR");
  const std::string dir = env_dir ? env_dir : "fuzz_failures";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/spec_seed" + std::to_string(seed) + ".txt";
  std::ofstream os(path);
  os << "# tunespace fuzz failure, seed " << seed << "\n"
     << testsupport::write_spec(spec);
  return path;
}

std::string render_row(const std::vector<std::uint32_t>& row) {
  std::ostringstream os;
  for (std::size_t i = 0; i < row.size(); ++i) os << (i ? "," : "") << row[i];
  return os.str();
}

}  // namespace

TEST(FuzzDifferential, AllEnginesMatchOracleOverRandomSpecs) {
  const std::uint64_t base = env_u64("TUNESPACE_FUZZ_SEED_BASE", 1);
  const std::uint64_t count = env_u64("TUNESPACE_FUZZ_SEED_COUNT", 50);
  const std::uint64_t wall_cap = env_u64("TUNESPACE_FUZZ_WALL_SECONDS", 0);

  util::WallTimer wall;
  std::uint64_t completed = 0;
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    if (wall_cap > 0 && wall.seconds() > static_cast<double>(wall_cap)) break;

    const tuner::TuningProblem spec = testsupport::random_spec(seed);
    const auto oracle = oracle_rows(spec);

    for (const auto& method : tuner::construction_methods(/*include_blocking=*/true)) {
      csp::Problem problem = tuner::build_problem(spec, method.pipeline);
      const solver::SolveResult result = method.solver->solve(problem);

      // SolveStats sanity: the fast path is a subset of all checks, and no
      // engine may report negative or absurd effort.
      EXPECT_LE(result.stats.fast_checks, result.stats.constraint_checks)
          << method.name << " seed " << seed;
      EXPECT_GE(result.stats.preprocess_seconds, 0.0) << method.name;
      EXPECT_GE(result.stats.search_seconds, 0.0) << method.name;
      EXPECT_LE(result.solutions.size(), spec.cartesian_size())
          << method.name << " seed " << seed;

      const auto rows = result.solutions.sorted_rows();
      if (rows != oracle) {
        const std::string path = dump_failing_spec(spec, seed);
        std::string detail;
        for (std::size_t r = 0; r < std::max(rows.size(), oracle.size()); ++r) {
          const std::string got = r < rows.size() ? render_row(rows[r]) : "<none>";
          const std::string want =
              r < oracle.size() ? render_row(oracle[r]) : "<none>";
          if (got != want) {
            detail = "first differing row " + std::to_string(r) + ": engine [" +
                     got + "] vs oracle [" + want + "]";
            break;
          }
        }
        ADD_FAILURE() << "engine '" << method.name << "' disagrees with the "
                      << "oracle on fuzz seed " << seed << " (" << rows.size()
                      << " vs " << oracle.size() << " rows; " << detail
                      << ")\n  spec serialized to: " << path
                      << "\n  reproduce with: TUNESPACE_FUZZ_SEED_BASE=" << seed
                      << " TUNESPACE_FUZZ_SEED_COUNT=1 ./test_fuzz_differential";
      }
    }
    ++completed;
  }
  std::cout << "[fuzz] " << completed << "/" << count
            << " seeds verified against all six engines (base " << base << ", "
            << wall.seconds() << "s)\n";
  // The wall cap exists for the nightly job; the default run must cover
  // every seed.
  if (wall_cap == 0) {
    EXPECT_EQ(completed, count);
  }
}

// Block-tier wall, constraint level: for every specialized constraint of
// every random spec, sweep domain slices through satisfied_block in ragged
// chunks and require lane-for-lane agreement with the scalar fast tier
// (whose poison protocol ends at the boxed oracle) AND with the tree
// interpreter over the unlowered expression (EvalError => invalid).  This is
// the mask-level counterpart of the row-level engine wall above.
TEST(FuzzDifferential, BlockMasksMatchScalarAndOracleLaneForLane) {
  const std::uint64_t base = env_u64("TUNESPACE_FUZZ_SEED_BASE", 1);
  const std::uint64_t count = env_u64("TUNESPACE_FUZZ_SEED_COUNT", 50);
  const std::uint64_t wall_cap = env_u64("TUNESPACE_FUZZ_WALL_SECONDS", 0);

  util::WallTimer wall;
  std::uint64_t completed = 0, specialized = 0, lanes = 0;
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    if (wall_cap > 0 && wall.seconds() > static_cast<double>(wall_cap)) break;

    const tuner::TuningProblem spec = testsupport::random_spec(seed);
    const auto& params = spec.params();
    util::Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);

    for (const auto& text : spec.constraints()) {
      expr::FunctionConstraint c(expr::parse(text));
      std::vector<std::uint32_t> indices;
      std::vector<csp::Domain> storage;
      storage.reserve(c.scope().size());
      for (const auto& name : c.scope()) {
        std::size_t p = 0;
        while (p < params.size() && params[p].name != name) ++p;
        ASSERT_LT(p, params.size()) << text;
        indices.push_back(static_cast<std::uint32_t>(p));
        storage.emplace_back(params[p].values);
      }
      c.bind(indices);
      std::vector<const csp::Domain*> scope_domains;
      for (const auto& d : storage) scope_domains.push_back(&d);
      if (!c.try_specialize(scope_domains)) continue;  // boxed-only
      ++specialized;

      for (int rep = 0; rep < 6; ++rep) {
        // Random full assignment, then sweep a random scope variable's
        // domain through the block entry point in ragged chunks.
        std::vector<std::int64_t> values(params.size());
        for (std::size_t p = 0; p < params.size(); ++p) {
          values[p] =
              params[p].values[rng.index(params[p].values.size())].as_int();
        }
        const std::uint32_t var = indices[rng.index(indices.size())];
        const auto& dom = params[var].values;
        const std::size_t chunk = 1 + rng.index(csp::Constraint::kMaxBlockLanes);
        for (std::size_t start = 0; start < dom.size(); start += chunk) {
          const std::size_t n = std::min(chunk, dom.size() - start);
          std::int64_t candidates[csp::Constraint::kMaxBlockLanes];
          unsigned char mask[csp::Constraint::kMaxBlockLanes];
          unsigned char expect[csp::Constraint::kMaxBlockLanes];
          for (std::size_t i = 0; i < n; ++i) {
            candidates[i] = dom[start + i].as_int();
            mask[i] = 1;
            values[var] = candidates[i];
            const bool scalar = c.satisfied_fast(values.data());
            bool oracle;
            try {
              oracle = expr::eval_bool(
                  *c.expression(), [&](const std::string& name) -> csp::Value {
                    for (std::size_t p = 0; p < params.size(); ++p) {
                      if (params[p].name == name) return csp::Value(values[p]);
                    }
                    throw expr::EvalError("unknown variable " + name);
                  });
            } catch (const expr::EvalError&) {
              oracle = false;  // raising configurations are invalid
            }
            ASSERT_EQ(scalar, oracle) << text << " seed " << seed;
            expect[i] = scalar ? 1 : 0;
          }
          c.satisfied_block(values.data(), var, candidates, n, mask);
          for (std::size_t i = 0; i < n; ++i) {
            ++lanes;
            ASSERT_EQ(mask[i] != 0, expect[i] != 0)
                << text << " seed " << seed << " lane " << i << " candidate "
                << candidates[i]
                << "\n  reproduce with: TUNESPACE_FUZZ_SEED_BASE=" << seed
                << " TUNESPACE_FUZZ_SEED_COUNT=1 ./test_fuzz_differential";
          }
        }
      }
    }
    ++completed;
  }
  std::cout << "[fuzz] block tier: " << completed << "/" << count << " seeds, "
            << specialized << " specialized constraints, " << lanes
            << " lanes verified (" << wall.seconds() << "s)\n";
  if (wall_cap == 0) {
    EXPECT_EQ(completed, count);
  }
}

// Block-tier wall, solver level: enabling the block evaluator must change
// nothing observable — same rows AND the same effort counters, because lanes
// are charged as individual fast checks.
TEST(FuzzDifferential, BlockOnOffRowsAndEffortIdentical) {
  const std::uint64_t base = env_u64("TUNESPACE_FUZZ_SEED_BASE", 1);
  const std::uint64_t count = env_u64("TUNESPACE_FUZZ_SEED_COUNT", 50);
  const std::uint64_t wall_cap = env_u64("TUNESPACE_FUZZ_WALL_SECONDS", 0);

  util::WallTimer wall;
  std::uint64_t completed = 0;
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    if (wall_cap > 0 && wall.seconds() > static_cast<double>(wall_cap)) break;

    const tuner::TuningProblem spec = testsupport::random_spec(seed);
    csp::Problem p_on =
        tuner::build_problem(spec, tuner::PipelineOptions::optimized());
    csp::Problem p_off =
        tuner::build_problem(spec, tuner::PipelineOptions::optimized());
    solver::OptimizedOptions off;
    off.block_eval = false;

    const auto on = solver::OptimizedBacktracking().solve(p_on);
    const auto scalar = solver::OptimizedBacktracking(off).solve(p_off);
    ASSERT_EQ(scalar.stats.block_checks, 0u) << "seed " << seed;
    ASSERT_EQ(on.solutions.sorted_rows(), scalar.solutions.sorted_rows())
        << "seed " << seed;
    ASSERT_EQ(on.stats.nodes, scalar.stats.nodes) << "seed " << seed;
    ASSERT_EQ(on.stats.constraint_checks, scalar.stats.constraint_checks)
        << "seed " << seed;
    ASSERT_EQ(on.stats.fast_checks, scalar.stats.fast_checks)
        << "seed " << seed;
    ASSERT_EQ(on.stats.prunes, scalar.stats.prunes) << "seed " << seed;
    ++completed;
  }
  std::cout << "[fuzz] block on/off: " << completed << "/" << count
            << " seeds identical (" << wall.seconds() << "s)\n";
  if (wall_cap == 0) {
    EXPECT_EQ(completed, count);
  }
}

TEST(FuzzSpecGen, DeterministicPerSeed) {
  const auto a = testsupport::random_spec(42);
  const auto b = testsupport::random_spec(42);
  EXPECT_EQ(testsupport::write_spec(a), testsupport::write_spec(b));
  const auto c = testsupport::random_spec(43);
  EXPECT_NE(testsupport::write_spec(a), testsupport::write_spec(c));
}

TEST(FuzzSpecGen, DensityControlsConstraintCount) {
  testsupport::SpecGenOptions loose;
  loose.constraint_density = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_TRUE(testsupport::random_spec(seed, loose).constraints().empty());
  }
  testsupport::SpecGenOptions dense;
  dense.constraint_density = 1.0;
  std::size_t total = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto spec = testsupport::random_spec(seed, dense);
    EXPECT_EQ(spec.constraints().size(), spec.num_params() + 1);
    total += spec.constraints().size();
  }
  EXPECT_GT(total, 0u);
}

TEST(FuzzSpecGen, CartesianCapRespected) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto spec = testsupport::random_spec(seed);
    EXPECT_LE(spec.cartesian_size(), testsupport::SpecGenOptions{}.max_cartesian);
    EXPECT_GE(spec.num_params(), testsupport::SpecGenOptions{}.min_params);
  }
}

TEST(FuzzSpecGen, SerializationRoundTrips) {
  const auto spec = testsupport::random_spec(7);
  const std::string text = testsupport::write_spec(spec);
  std::istringstream is(text);
  const auto loaded = testsupport::read_spec(is);
  EXPECT_EQ(loaded.name(), spec.name());
  EXPECT_EQ(testsupport::write_spec(loaded), text);
  // The reloaded spec must resolve to the same search space.
  EXPECT_EQ(oracle_rows(loaded), oracle_rows(spec));
}

TEST(FuzzSpecGen, ReadSpecRejectsMalformedInput) {
  const auto reject = [](const std::string& text) {
    std::istringstream is(text);
    EXPECT_THROW(testsupport::read_spec(is), std::runtime_error) << text;
  };
  reject("param\n");                // param without a name
  reject("param lonely\n");         // empty domain
  reject("constraint   \n");        // empty constraint
  reject("frobnicate a b c\n");     // unknown line kind
}
