// SubSpace views and the restriction predicate algebra: pushdown and scan
// execution must agree with brute-force filtering row-for-row (over both
// freshly-built and snapshot-loaded spaces), chained refinements must equal
// their conjunction, view-aware sampling/neighbour queries must stay inside
// the view, and optimizers over a view must be deterministic and equivalent
// to running over a space rebuilt with the restriction as a constraint.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "tunespace/searchspace/io.hpp"
#include "tunespace/searchspace/neighbors.hpp"
#include "tunespace/searchspace/sampling.hpp"
#include "tunespace/searchspace/view.hpp"
#include "tunespace/spaces/realworld.hpp"
#include "tunespace/tuner/kernels.hpp"
#include "tunespace/tuner/runner.hpp"
#include "tunespace/tuner/session.hpp"

using namespace tunespace;
using searchspace::SearchSpace;
using searchspace::SubSpace;
namespace query = tunespace::searchspace::query;
namespace fs = std::filesystem;

namespace {

tuner::TuningProblem small_spec() {
  tuner::TuningProblem spec("query-small");
  spec.add_param("x", {1, 2, 3, 4, 5, 6, 7, 8})
      .add_param("y", {1, 2, 3, 4, 5, 6, 7, 8})
      .add_param("z", {1, 2, 4})
      .add_param("layout", std::vector<csp::Value>{csp::Value("NHWC"),
                                                   csp::Value("NCHW")});
  spec.add_constraint("x + y <= 12");
  return spec;
}

/// A predicate paired with an independent semantic oracle over configs.
struct Case {
  std::string name;
  query::Predicate predicate;
  std::function<bool(const csp::Config&)> matches;  ///< params in spec order
};

std::vector<Case> small_cases() {
  std::vector<Case> cases;
  cases.push_back({"pin-x", query::eq("x", 4),
                   [](const csp::Config& c) { return c[0] == csp::Value(4); }});
  cases.push_back({"in-z", query::in_set("z", {2, 4}),
                   [](const csp::Config& c) {
                     return c[2] == csp::Value(2) || c[2] == csp::Value(4);
                   }});
  cases.push_back({"range-y", query::between("y", 3, 6),
                   [](const csp::Config& c) {
                     return c[1].as_int() >= 3 && c[1].as_int() <= 6;
                   }});
  cases.push_back({"layout", query::eq("layout", "NHWC"),
                   [](const csp::Config& c) { return c[3] == csp::Value("NHWC"); }});
  cases.push_back(
      {"conjunction",
       query::eq("layout", "NCHW") && query::between("x", 2, 5) &&
           query::in_set("z", {1, 2}),
       [](const csp::Config& c) {
         return c[3] == csp::Value("NCHW") && c[0].as_int() >= 2 &&
                c[0].as_int() <= 5 && (c[2] == csp::Value(1) || c[2] == csp::Value(2));
       }});
  cases.push_back({"empty", query::eq("x", 1) && query::eq("y", 12),
                   [](const csp::Config&) { return false; }});
  return cases;
}

/// Oracle filter: parent rows whose config matches, in enumeration order.
std::vector<std::size_t> oracle_rows(const SearchSpace& space,
                                     const std::function<bool(const csp::Config&)>& f) {
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < space.size(); ++r) {
    if (f(space.config(r))) rows.push_back(r);
  }
  return rows;
}

std::vector<std::size_t> view_parent_rows(const SubSpace& view) {
  std::vector<std::size_t> rows;
  rows.reserve(view.size());
  for (std::size_t r = 0; r < view.size(); ++r) rows.push_back(view.parent_row(r));
  return rows;
}

std::vector<std::string> sorted_config_strings(const SubSpace& view) {
  std::vector<std::string> out;
  out.reserve(view.size());
  for (std::size_t r = 0; r < view.size(); ++r) {
    out.push_back(view.problem().config_to_string(view.config(r)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Both execution strategies, checked against each other and the oracle.
void expect_view_matches_oracle(const SearchSpace& space, const Case& c) {
  const auto expected = oracle_rows(space, c.matches);
  query::QueryStats push_stats, scan_stats;
  const SubSpace pushdown =
      SubSpace::filter(space, c.predicate, {query::Exec::kPushdown}, &push_stats);
  const SubSpace scan =
      SubSpace::filter(space, c.predicate, {query::Exec::kScan}, &scan_stats);
  EXPECT_EQ(view_parent_rows(pushdown), expected) << c.name << " (pushdown)";
  EXPECT_EQ(view_parent_rows(scan), expected) << c.name << " (scan)";
  EXPECT_EQ(push_stats.rows_out, expected.size()) << c.name;
  EXPECT_EQ(scan_stats.rows_out, expected.size()) << c.name;
}

}  // namespace

// ---------------------------------------------------------------------------
// Predicate algebra
// ---------------------------------------------------------------------------

TEST(Predicate, TrivialAndFlattening) {
  query::Predicate trivial;
  EXPECT_TRUE(trivial.trivial());
  EXPECT_TRUE(query::all_of({}).trivial());
  EXPECT_TRUE(query::all_of({trivial, trivial}).trivial());
  EXPECT_FALSE(query::eq("x", 1).trivial());
  // Conjunction with the trivial predicate is the other operand.
  EXPECT_EQ(query::to_string(trivial && query::eq("x", 1)), "x == 1");
}

TEST(Predicate, ToString) {
  EXPECT_EQ(query::to_string(query::eq("x", 4)), "x == 4");
  EXPECT_EQ(query::to_string(query::in_set("z", {2, 4})), "z in (2, 4)");
  EXPECT_EQ(query::to_string(query::between("y", 3, 6)), "3 <= y <= 6");
  EXPECT_EQ(query::to_string(query::eq("x", 4) && query::between("y", 3, 6)),
            "x == 4 and 3 <= y <= 6");
}

TEST(Predicate, CompileResolvesValueIndices) {
  SearchSpace space(small_spec());
  const auto compiled =
      query::compile(query::in_set("z", {4, 2, 99}), space.problem());
  ASSERT_EQ(compiled.masks.size(), 1u);
  EXPECT_EQ(compiled.masks[0].param, 2u);
  // z domain is {1, 2, 4}: value 2 -> index 1, value 4 -> index 2; 99 absent.
  EXPECT_EQ(compiled.masks[0].allowed, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_FALSE(compiled.unsatisfiable());
}

TEST(Predicate, CompileIntersectsSameParameter) {
  SearchSpace space(small_spec());
  const auto compiled = query::compile(
      query::in_set("x", {2, 3, 4}) && query::between("x", 3, 8), space.problem());
  ASSERT_EQ(compiled.masks.size(), 1u);
  EXPECT_EQ(compiled.masks[0].allowed, (std::vector<std::uint32_t>{2, 3}));
}

TEST(Predicate, UnknownParameterThrows) {
  SearchSpace space(small_spec());
  EXPECT_THROW(query::compile(query::eq("nope", 1), space.problem()),
               std::out_of_range);
  EXPECT_THROW(SubSpace::filter(space, query::eq("nope", 1)), std::out_of_range);
}

TEST(Predicate, AbsentValueIsUnsatisfiable) {
  SearchSpace space(small_spec());
  const auto compiled = query::compile(query::eq("x", 99), space.problem());
  EXPECT_TRUE(compiled.unsatisfiable());
  const SubSpace view = SubSpace::filter(space, query::eq("x", 99));
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.size(), 0u);
}

TEST(Predicate, StringBoundsNeverMatchNumbers) {
  SearchSpace space(small_spec());
  // Numeric bounds over the string parameter: no domain value is orderable
  // against them, so the restriction is empty rather than an error.
  const SubSpace view = SubSpace::filter(space, query::between("layout", 0, 10));
  EXPECT_TRUE(view.empty());
}

// ---------------------------------------------------------------------------
// View equivalence properties
// ---------------------------------------------------------------------------

TEST(SubSpaceEquivalence, PushdownScanAndOracleAgreeOnSmallSpace) {
  SearchSpace space(small_spec());
  for (const Case& c : small_cases()) expect_view_matches_oracle(space, c);
}

TEST(SubSpaceEquivalence, PushdownScanAndOracleAgreeOnGemm) {
  auto rw = spaces::gemm();
  SearchSpace space(rw.spec);
  std::vector<Case> cases;
  cases.push_back({"pin-MWG", query::eq("MWG", 64) && query::in_set("MDIMC", {8, 16}),
                   [&](const csp::Config& c) {
                     const auto& p = space.problem();
                     return c[p.index_of("MWG")] == csp::Value(64) &&
                            (c[p.index_of("MDIMC")] == csp::Value(8) ||
                             c[p.index_of("MDIMC")] == csp::Value(16));
                   }});
  cases.push_back({"range-KWG", query::between("KWG", 16, 32),
                   [&](const csp::Config& c) {
                     const auto v = c[space.problem().index_of("KWG")].as_int();
                     return v >= 16 && v <= 32;
                   }});
  for (const Case& c : cases) expect_view_matches_oracle(space, c);
}

TEST(SubSpaceEquivalence, ViewEqualsRebuiltSpaceAsConfigSet) {
  // A re-solve with the restriction appended may enumerate in a different
  // order (the added constraint shifts the solver's variable ordering), so
  // the equivalence is over canonicalized configuration sets.
  auto spec = small_spec();
  SearchSpace space(spec);
  const SubSpace view =
      SubSpace::filter(space, query::eq("z", 2) && query::between("x", 2, 6));
  auto rebuilt_spec = spec;
  rebuilt_spec.add_constraint("z == 2 and 2 <= x <= 6");
  SearchSpace rebuilt(rebuilt_spec);
  EXPECT_EQ(view.size(), rebuilt.size());
  EXPECT_EQ(sorted_config_strings(view), sorted_config_strings(SubSpace(rebuilt)));
}

TEST(SubSpaceEquivalence, FilterOverSnapshotLoadedSpaceMatchesFresh) {
  const fs::path dir =
      fs::temp_directory_path() / "tunespace-query-snapshot-test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "small.tss").string();

  auto spec = small_spec();
  SearchSpace fresh(spec);
  searchspace::save_snapshot(fresh, path);
  SearchSpace loaded = searchspace::load_snapshot(
      spec, path, searchspace::SnapshotVerify::kFull);

  for (const Case& c : small_cases()) {
    expect_view_matches_oracle(loaded, c);
    const SubSpace from_fresh = SubSpace::filter(fresh, c.predicate);
    const SubSpace from_loaded = SubSpace::filter(loaded, c.predicate);
    EXPECT_EQ(view_parent_rows(from_fresh), view_parent_rows(from_loaded)) << c.name;
  }
  fs::remove_all(dir);
}

TEST(SubSpaceEquivalence, ChainedRefinementEqualsConjunction) {
  SearchSpace space(small_spec());
  const auto p1 = query::between("x", 2, 6);
  const auto p2 = query::eq("z", 2);
  const auto p3 = query::eq("layout", "NHWC");

  const SubSpace chained =
      SubSpace::filter(space, p1).restrict(p2).restrict(p3);
  const SubSpace direct = SubSpace::filter(space, query::all_of({p1, p2, p3}));
  EXPECT_EQ(view_parent_rows(chained), view_parent_rows(direct));
  EXPECT_FALSE(chained.empty());

  // Pushdown-chained and scan-chained agree too.
  const SubSpace chained_scan = SubSpace::filter(space, p1, {query::Exec::kScan})
                                    .restrict(p2, {query::Exec::kScan})
                                    .restrict(p3, {query::Exec::kScan});
  EXPECT_EQ(view_parent_rows(chained_scan), view_parent_rows(direct));
}

TEST(SubSpaceEquivalence, TrivialRestrictSharesSelection) {
  SearchSpace space(small_spec());
  const SubSpace view = SubSpace::filter(space, query::eq("z", 2));
  const SubSpace same = view.restrict(query::Predicate());
  EXPECT_EQ(same.selection().data(), view.selection().data());
  EXPECT_EQ(same.size(), view.size());

  // A whole-space view restricted by nothing stays a whole-space view.
  EXPECT_TRUE(SubSpace(space).restrict(query::Predicate()).is_whole());
}

TEST(SubSpaceEquivalence, RestrictingToNothingYieldsEmptyView) {
  SearchSpace space(small_spec());
  const SubSpace view = SubSpace::filter(space, query::eq("x", 4));
  const SubSpace none = view.restrict(query::eq("x", 5));
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.top_rows(10).size(), 0u);
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

TEST(SubSpaceAccessors, WholeViewMirrorsParent) {
  SearchSpace space(small_spec());
  const SubSpace view(space);
  EXPECT_TRUE(view.is_whole());
  EXPECT_EQ(view.size(), space.size());
  EXPECT_EQ(view.count(), space.size());
  EXPECT_EQ(view.num_params(), space.num_params());
  EXPECT_TRUE(view.selection().empty());
  for (std::size_t r = 0; r < view.size(); r += 17) {
    EXPECT_EQ(view.parent_row(r), r);
    EXPECT_EQ(view.config(r), space.config(r));
    EXPECT_EQ(view.indices(r), space.indices(r));
    EXPECT_EQ(view.find(space.indices(r)), std::optional<std::size_t>(r));
  }
  for (std::size_t p = 0; p < view.num_params(); ++p) {
    EXPECT_EQ(view.present_values(p), space.present_values(p));
  }
}

TEST(SubSpaceAccessors, FilteredViewRowAddressing) {
  SearchSpace space(small_spec());
  const auto pred = query::eq("z", 2) && query::between("y", 3, 6);
  const SubSpace view = SubSpace::filter(space, pred);
  ASSERT_FALSE(view.empty());
  EXPECT_EQ(view.selection().size(), view.size());

  for (std::size_t local = 0; local < view.size(); ++local) {
    const std::size_t parent = view.parent_row(local);
    EXPECT_EQ(view.local_of(parent), std::optional<std::size_t>(local));
    EXPECT_EQ(view.config(local), space.config(parent));
    for (std::size_t p = 0; p < view.num_params(); ++p) {
      EXPECT_EQ(view.value_index(local, p), space.value_index(parent, p));
      EXPECT_EQ(view.value(local, p), space.value(parent, p));
    }
    // find() maps through to local ids.
    EXPECT_EQ(view.find(space.indices(parent)), std::optional<std::size_t>(local));
  }
  // A parent row outside the view is not found.
  const auto excluded = oracle_rows(space, [&](const csp::Config& c) {
    return !(c[2] == csp::Value(2) && c[1].as_int() >= 3 && c[1].as_int() <= 6);
  });
  ASSERT_FALSE(excluded.empty());
  EXPECT_FALSE(view.local_of(excluded.front()).has_value());
  EXPECT_FALSE(view.find(space.indices(excluded.front())).has_value());
}

TEST(SubSpaceAccessors, TopRowsAndProject) {
  SearchSpace space(small_spec());
  const SubSpace view = SubSpace::filter(space, query::between("x", 2, 3));
  const auto top = view.top_rows(5);
  ASSERT_EQ(top.size(), std::min<std::size_t>(5, view.size()));
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i], view.parent_row(i));
  }
  EXPECT_EQ(view.top_rows(view.size() + 100).size(), view.size());

  const auto xs = view.project("x");
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[0], csp::Value(2));
  EXPECT_EQ(xs[1], csp::Value(3));
  // Unrestricted parameters keep their full within-view bounds.
  EXPECT_EQ(view.project("z").size(), 3u);
}

TEST(SubSpaceAccessors, PresentValuesAreExactlyTheOccurringOnes) {
  SearchSpace space(small_spec());
  const SubSpace view = SubSpace::filter(space, query::between("y", 7, 8));
  for (std::size_t p = 0; p < view.num_params(); ++p) {
    std::set<std::uint32_t> occurring;
    for (std::size_t r = 0; r < view.size(); ++r) {
      occurring.insert(view.value_index(r, p));
    }
    const auto& present = view.present_values(p);
    EXPECT_EQ(std::vector<std::uint32_t>(occurring.begin(), occurring.end()),
              present)
        << "param " << p;
  }
  // y in {7, 8} forces x <= 5: the view's true bounds shrink below the
  // parent's (the restriction propagates through the constraint).
  const std::size_t x = space.problem().index_of("x");
  EXPECT_LT(view.present_values(x).size(), space.present_values(x).size());
}

// ---------------------------------------------------------------------------
// Sampling and neighbours over views
// ---------------------------------------------------------------------------

TEST(SubSpaceSampling, RandomSampleStaysLocalAndDeterministic) {
  SearchSpace space(small_spec());
  const SubSpace view = SubSpace::filter(space, query::eq("z", 2));
  util::Rng a(7), b(7);
  const auto rows = searchspace::random_sample(view, 10, a);
  EXPECT_EQ(rows, searchspace::random_sample(view, 10, b));
  EXPECT_EQ(rows.size(), std::min<std::size_t>(10, view.size()));
  std::set<std::size_t> unique(rows.begin(), rows.end());
  EXPECT_EQ(unique.size(), rows.size());
  for (std::size_t r : rows) EXPECT_LT(r, view.size());
}

TEST(SubSpaceSampling, WholeViewMatchesSpaceOverloads) {
  SearchSpace space(small_spec());
  const SubSpace whole(space);
  util::Rng a(11), b(11);
  EXPECT_EQ(searchspace::latin_hypercube_sample(space, 16, a),
            searchspace::latin_hypercube_sample(whole, 16, b));
  for (std::size_t r = 0; r < space.size(); r += 13) {
    EXPECT_EQ(searchspace::snap_to_valid(space, space.indices(r)),
              searchspace::snap_to_valid(whole, whole.indices(r)));
    EXPECT_EQ(searchspace::neighbors_of(space, r), searchspace::neighbors_of(whole, r));
  }
}

TEST(SubSpaceSampling, SnapAndLhsStayInsideTheView) {
  SearchSpace space(small_spec());
  const auto pred = query::eq("z", 2) && query::between("x", 2, 5);
  const SubSpace view = SubSpace::filter(space, pred);
  ASSERT_FALSE(view.empty());

  // Snap an index-row excluded by the predicate: the result is a member.
  std::vector<std::uint32_t> target = space.indices(0);
  const std::size_t snapped = searchspace::snap_to_valid(view, target);
  EXPECT_LT(snapped, view.size());
  EXPECT_EQ(view.config(snapped)[2], csp::Value(2));

  util::Rng rng(3);
  for (std::size_t r : searchspace::latin_hypercube_sample(view, 12, rng)) {
    ASSERT_LT(r, view.size());
    const csp::Config c = view.config(r);
    EXPECT_EQ(c[2], csp::Value(2));
    EXPECT_GE(c[0].as_int(), 2);
    EXPECT_LE(c[0].as_int(), 5);
  }
}

TEST(SubSpaceNeighbors, MatchBruteForceWithinView) {
  SearchSpace space(small_spec());
  const SubSpace view =
      SubSpace::filter(space, query::between("x", 2, 6) && query::eq("layout", "NHWC"));
  ASSERT_FALSE(view.empty());
  for (std::size_t r = 0; r < view.size(); r += 3) {
    // Brute force: members differing in exactly one parameter.
    std::vector<std::size_t> expected;
    for (std::size_t other = 0; other < view.size(); ++other) {
      if (other == r) continue;
      std::size_t diffs = 0;
      for (std::size_t p = 0; p < view.num_params(); ++p) {
        if (view.value_index(r, p) != view.value_index(other, p)) ++diffs;
      }
      if (diffs == 1) expected.push_back(other);
    }
    auto got = searchspace::neighbors_of(view, r, searchspace::NeighborMethod::Hamming1);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "row " << r;
    // neighbors_within_hamming(1) is the same set.
    EXPECT_EQ(searchspace::neighbors_within_hamming(view, r, 1), expected);
  }
}

TEST(SubSpaceNeighbors, NeighborIndexOverViewMatchesPerRowQueries) {
  SearchSpace space(small_spec());
  const SubSpace view = SubSpace::filter(space, query::eq("z", 4));
  const searchspace::NeighborIndex index(view, searchspace::NeighborMethod::Adjacent);
  std::size_t edges = 0;
  for (std::size_t r = 0; r < view.size(); ++r) {
    const auto direct =
        searchspace::neighbors_of(view, r, searchspace::NeighborMethod::Adjacent);
    EXPECT_EQ(index.neighbors(r), direct);
    edges += direct.size();
  }
  EXPECT_EQ(index.total_edges(), edges);
}

// ---------------------------------------------------------------------------
// Optimizers over views
// ---------------------------------------------------------------------------

namespace {

/// Drive an optimizer over a view with a deterministic synthetic objective,
/// recording the sequence of evaluated configurations.
std::vector<std::string> drive(const SubSpace& view, tuner::Optimizer& optimizer,
                               std::uint64_t seed, std::size_t budget) {
  std::vector<std::string> evaluated;
  util::Rng rng(seed);
  tuner::EvalContext ctx{
      view,
      [&](std::size_t row) -> double {
        const csp::Config c = view.config(row);
        evaluated.push_back(view.problem().config_to_string(c));
        double v = 0;
        for (const auto& value : c) v += value.is_numeric() ? value.as_real() : 1.0;
        return v;
      },
      [&]() { return evaluated.size() >= budget; },
      &rng};
  optimizer.run(ctx);
  return evaluated;
}

}  // namespace

TEST(SubSpaceOptimizers, DeterministicOverViewPerSeed) {
  SearchSpace space(small_spec());
  const SubSpace view = SubSpace::filter(space, query::between("x", 2, 6));
  tuner::RandomSearch rs1, rs2;
  EXPECT_EQ(drive(view, rs1, 5, 40), drive(view, rs2, 5, 40));
  tuner::GeneticAlgorithm ga1, ga2;
  EXPECT_EQ(drive(view, ga1, 5, 40), drive(view, ga2, 5, 40));
  tuner::DifferentialEvolution de1, de2;
  EXPECT_EQ(drive(view, de1, 5, 40), drive(view, de2, 5, 40));
}

TEST(SubSpaceOptimizers, ViewRunMatchesRebuiltSpaceAsEvaluationSet) {
  // A full RandomSearch sweep over the view and over a space rebuilt with
  // the restriction as a constraint must evaluate the same configuration
  // set (the enumeration orders differ, so compare canonically).
  auto spec = small_spec();
  SearchSpace space(spec);
  const SubSpace view = SubSpace::filter(space, query::eq("z", 2));
  auto rebuilt_spec = spec;
  rebuilt_spec.add_constraint("z == 2");
  SearchSpace rebuilt(rebuilt_spec);
  ASSERT_EQ(view.size(), rebuilt.size());

  tuner::RandomSearch rs1, rs2;
  auto from_view = drive(view, rs1, 9, view.size());
  auto from_rebuilt = drive(SubSpace(rebuilt), rs2, 9, rebuilt.size());
  std::sort(from_view.begin(), from_view.end());
  std::sort(from_rebuilt.begin(), from_rebuilt.end());
  EXPECT_EQ(from_view, from_rebuilt);
}

TEST(SubSpaceOptimizers, EveryEvaluationSatisfiesThePredicate) {
  SearchSpace space(small_spec());
  const SubSpace view =
      SubSpace::filter(space, query::eq("layout", "NCHW") && query::between("y", 2, 4));
  tuner::GeneticAlgorithm ga;
  tuner::SimulatedAnnealing sa;
  tuner::HillClimber hc;
  for (tuner::Optimizer* opt : {static_cast<tuner::Optimizer*>(&ga),
                                static_cast<tuner::Optimizer*>(&sa),
                                static_cast<tuner::Optimizer*>(&hc)}) {
    std::vector<std::string> evaluated;
    util::Rng rng(13);
    tuner::EvalContext ctx{
        view,
        [&](std::size_t row) -> double {
          const csp::Config c = view.config(row);
          EXPECT_EQ(c[3], csp::Value("NCHW")) << opt->name();
          EXPECT_GE(c[1].as_int(), 2) << opt->name();
          EXPECT_LE(c[1].as_int(), 4) << opt->name();
          evaluated.push_back(view.problem().config_to_string(c));
          return static_cast<double>(c[0].as_int());
        },
        [&]() { return evaluated.size() >= 30; },
        &rng};
    opt->run(ctx);
    EXPECT_FALSE(evaluated.empty()) << opt->name();
  }
}

TEST(SubSpaceOptimizers, RandomSearchLazyPermutationSweepsWithoutRepeats) {
  SearchSpace space(small_spec());
  const SubSpace whole(space);
  tuner::RandomSearch rs;
  // Full-budget sweep: every row exactly once.
  const auto evaluated = drive(whole, rs, 17, space.size());
  EXPECT_EQ(evaluated.size(), space.size());
  std::set<std::string> unique(evaluated.begin(), evaluated.end());
  EXPECT_EQ(unique.size(), space.size());

  // Budget-limited prefix: distinct rows, and a prefix of the full-sweep
  // order for the same seed (the lazy permutation is stable).
  tuner::RandomSearch rs2;
  const auto prefix = drive(whole, rs2, 17, 25);
  EXPECT_EQ(prefix.size(), 25u);
  EXPECT_TRUE(std::equal(prefix.begin(), prefix.end(), evaluated.begin()));
}

TEST(SubSpaceOptimizers, RunTuningOverViewChargesParentConstruction) {
  SearchSpace space(small_spec());
  const SubSpace view = SubSpace::filter(space, query::eq("z", 2));
  tuner::RandomSearch rs;
  tuner::SyntheticModel model(5);
  tuner::TuningOptions options;
  options.budget_seconds = 50.0;
  options.seed = 2;
  const auto run = tuner::run_session(
      tuner::make_session_request(view, model, rs, options, "restricted"));
  EXPECT_EQ(run.method_name, "restricted");
  EXPECT_EQ(run.construction_seconds, space.construction_seconds());
  EXPECT_GT(run.evaluations, 0u);
  EXPECT_GT(run.best_gflops, 0.0);
}
