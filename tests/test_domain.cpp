// Unit tests for csp::Domain.
#include <gtest/gtest.h>

#include "tunespace/csp/domain.hpp"

namespace csp = tunespace::csp;
using csp::Domain;
using csp::Value;

TEST(Domain, RangeConstruction) {
  Domain d = Domain::range(2, 10, 2);
  ASSERT_EQ(d.size(), 5u);
  EXPECT_EQ(d[0], Value(2));
  EXPECT_EQ(d[4], Value(10));
}

TEST(Domain, PowersConstruction) {
  Domain d = Domain::powers(1, 1024);
  ASSERT_EQ(d.size(), 11u);
  EXPECT_EQ(d[0], Value(1));
  EXPECT_EQ(d[10], Value(1024));
}

TEST(Domain, IndexOfAndContains) {
  Domain d({Value(1), Value(4), Value(16)});
  EXPECT_EQ(d.index_of(Value(4)), 1u);
  EXPECT_EQ(d.index_of(Value(5)), Domain::npos);
  EXPECT_TRUE(d.contains(Value(16)));
  EXPECT_FALSE(d.contains(Value(2)));
}

TEST(Domain, IndexOfCrossKind) {
  Domain d({Value(1), Value(2)});
  EXPECT_EQ(d.index_of(Value(2.0)), 1u);  // 2 == 2.0
}

TEST(Domain, FilterRemovesAndCounts) {
  Domain d = Domain::range(1, 10);
  const std::size_t removed =
      d.filter([](const Value& v) { return v.as_int() % 2 == 0; });
  EXPECT_EQ(removed, 5u);
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(d[0], Value(2));
}

TEST(Domain, FilterPreservesOrder) {
  Domain d({Value(8), Value(2), Value(32)});
  d.filter([](const Value& v) { return v.as_int() > 2; });
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], Value(8));
  EXPECT_EQ(d[1], Value(32));
}

TEST(Domain, MinMax) {
  Domain d({Value(8), Value(2), Value(32)});
  EXPECT_EQ(d.min_value(), Value(2));
  EXPECT_EQ(d.max_value(), Value(32));
}

TEST(Domain, MinMaxEmptyThrows) {
  Domain d;
  EXPECT_THROW(d.min_value(), std::out_of_range);
  EXPECT_THROW(d.max_value(), std::out_of_range);
}

TEST(Domain, NumericChecks) {
  EXPECT_TRUE(Domain({Value(1), Value(2.5)}).all_numeric());
  EXPECT_FALSE(Domain({Value(1), Value("x")}).all_numeric());
  EXPECT_TRUE(Domain({Value(1), Value(2)}).all_positive());
  EXPECT_FALSE(Domain({Value(0), Value(2)}).all_positive());
  EXPECT_FALSE(Domain({Value(-1), Value(2)}).all_positive());
}
