// Unit tests for csp::Value: Python-compatible scalar semantics.
#include <gtest/gtest.h>

#include "tunespace/csp/value.hpp"

namespace csp = tunespace::csp;
using csp::Value;

TEST(Value, KindsAndAccessors) {
  EXPECT_TRUE(Value(5).is_int());
  EXPECT_TRUE(Value(1.5).is_real());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value("abc").is_str());
  EXPECT_EQ(Value(5).as_int(), 5);
  EXPECT_DOUBLE_EQ(Value(5).as_real(), 5.0);
  EXPECT_DOUBLE_EQ(Value(1.5).as_real(), 1.5);
  EXPECT_EQ(Value("abc").as_str(), "abc");
}

TEST(Value, BoolBehavesAsNumber) {
  EXPECT_EQ(Value(true).as_int(), 1);
  EXPECT_EQ(Value(false).as_int(), 0);
  EXPECT_DOUBLE_EQ(Value(true).as_real(), 1.0);
  EXPECT_TRUE(Value(true).is_numeric());
}

TEST(Value, IntegralRealReadsAsInt) {
  EXPECT_EQ(Value(4.0).as_int(), 4);
  EXPECT_THROW(Value(4.5).as_int(), csp::ValueError);
}

TEST(Value, StringAccessErrors) {
  EXPECT_THROW(Value("x").as_int(), csp::ValueError);
  EXPECT_THROW(Value("x").as_real(), csp::ValueError);
  EXPECT_THROW(Value(3).as_str(), csp::ValueError);
}

TEST(Value, Truthiness) {
  EXPECT_FALSE(Value(0).truthy());
  EXPECT_TRUE(Value(-1).truthy());
  EXPECT_FALSE(Value(0.0).truthy());
  EXPECT_TRUE(Value(0.1).truthy());
  EXPECT_FALSE(Value(false).truthy());
  EXPECT_FALSE(Value("").truthy());
  EXPECT_TRUE(Value("x").truthy());
}

TEST(Value, CrossKindEquality) {
  EXPECT_EQ(Value(1), Value(1.0));
  EXPECT_EQ(Value(1), Value(true));
  EXPECT_EQ(Value(0), Value(false));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_NE(Value(1), Value("1"));
  EXPECT_EQ(Value("a"), Value("a"));
}

TEST(Value, Compare) {
  EXPECT_LT(Value(1).compare(Value(2)), 0);
  EXPECT_GT(Value(2.5).compare(Value(2)), 0);
  EXPECT_EQ(Value(2).compare(Value(2.0)), 0);
  EXPECT_LT(Value("a").compare(Value("b")), 0);
  EXPECT_THROW(Value("a").compare(Value(1)), csp::ValueError);
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value(1).hash(), Value(1.0).hash());
  EXPECT_EQ(Value(1).hash(), Value(true).hash());
  EXPECT_EQ(Value("xyz").hash(), Value("xyz").hash());
}

TEST(Value, ToString) {
  EXPECT_EQ(Value(42).to_string(), "42");
  EXPECT_EQ(Value(true).to_string(), "True");
  EXPECT_EQ(Value(false).to_string(), "False");
  EXPECT_EQ(Value("hi").to_string(), "'hi'");
}
