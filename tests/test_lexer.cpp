// Unit tests for the expression lexer.
#include <gtest/gtest.h>

#include "tunespace/expr/lexer.hpp"

using namespace tunespace::expr;
using tunespace::csp::Value;

namespace {
std::vector<TokKind> kinds(const std::string& src) {
  std::vector<TokKind> out;
  for (const auto& t : tokenize(src)) out.push_back(t.kind);
  return out;
}
}  // namespace

TEST(Lexer, Numbers) {
  auto toks = tokenize("42 3.5 1e3 2.5e-2");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].value, Value(42));
  EXPECT_TRUE(toks[0].value.is_int());
  EXPECT_EQ(toks[1].value, Value(3.5));
  EXPECT_TRUE(toks[1].value.is_real());
  EXPECT_EQ(toks[2].value, Value(1000.0));
  EXPECT_EQ(toks[3].value, Value(0.025));
}

TEST(Lexer, Strings) {
  auto toks = tokenize("'abc' \"def\" 'a\\'b'");
  EXPECT_EQ(toks[0].value.as_str(), "abc");
  EXPECT_EQ(toks[1].value.as_str(), "def");
  EXPECT_EQ(toks[2].value.as_str(), "a'b");
}

TEST(Lexer, OperatorsAndCompounds) {
  EXPECT_EQ(kinds("+ - * ** / // %"),
            (std::vector<TokKind>{TokKind::Plus, TokKind::Minus, TokKind::Star,
                                  TokKind::DoubleStar, TokKind::Slash,
                                  TokKind::DoubleSlash, TokKind::Percent,
                                  TokKind::End}));
  EXPECT_EQ(kinds("< <= > >= == !="),
            (std::vector<TokKind>{TokKind::Lt, TokKind::Le, TokKind::Gt,
                                  TokKind::Ge, TokKind::EqEq, TokKind::NotEq,
                                  TokKind::End}));
}

TEST(Lexer, KeywordsVsIdentifiers) {
  auto toks = tokenize("and or not in True False android");
  EXPECT_EQ(toks[0].kind, TokKind::KwAnd);
  EXPECT_EQ(toks[1].kind, TokKind::KwOr);
  EXPECT_EQ(toks[2].kind, TokKind::KwNot);
  EXPECT_EQ(toks[3].kind, TokKind::KwIn);
  EXPECT_EQ(toks[4].kind, TokKind::KwTrue);
  EXPECT_EQ(toks[5].kind, TokKind::KwFalse);
  EXPECT_EQ(toks[6].kind, TokKind::Ident);
  EXPECT_EQ(toks[6].text, "android");
}

TEST(Lexer, BracketsAndCommas) {
  EXPECT_EQ(kinds("( ) [ ] ,"),
            (std::vector<TokKind>{TokKind::LParen, TokKind::RParen,
                                  TokKind::LBracket, TokKind::RBracket,
                                  TokKind::Comma, TokKind::End}));
}

TEST(Lexer, OffsetsTracked) {
  auto toks = tokenize("a + bb");
  EXPECT_EQ(toks[0].offset, 0u);
  EXPECT_EQ(toks[1].offset, 2u);
  EXPECT_EQ(toks[2].offset, 4u);
}

TEST(Lexer, Errors) {
  EXPECT_THROW(tokenize("a = b"), SyntaxError);
  EXPECT_THROW(tokenize("a ! b"), SyntaxError);
  EXPECT_THROW(tokenize("'unterminated"), SyntaxError);
  EXPECT_THROW(tokenize("a ? b"), SyntaxError);
}

TEST(Lexer, RealWorldConstraint) {
  auto toks = tokenize("32 <= block_size_x*block_size_y <= 1024");
  ASSERT_EQ(toks.size(), 8u);
  EXPECT_EQ(toks[0].value, Value(32));
  EXPECT_EQ(toks[1].kind, TokKind::Le);
  EXPECT_EQ(toks[2].text, "block_size_x");
}
