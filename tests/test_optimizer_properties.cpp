// Property tests for all seven optimizers, each run over both a full space
// and a restricted SubSpace view: the budget is always respected, the
// best-so-far trajectory is monotone, TuningRun::best_at agrees with the
// trajectory, and a fixed seed reproduces the identical run across repeats
// and under the SessionManager.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "tunespace/searchspace/view.hpp"
#include "tunespace/tuner/runner.hpp"
#include "tunespace/tuner/session.hpp"

using namespace tunespace;

namespace {

tuner::TuningProblem property_spec() {
  tuner::TuningProblem spec("property");
  spec.add_param("block_size_x", {1, 2, 4, 8, 16, 32, 64, 128})
      .add_param("block_size_y", {1, 2, 4, 8})
      .add_param("tile", {1, 2, 3, 4})
      .add_param("sh_power", {0, 1});
  spec.add_constraint("16 <= block_size_x * block_size_y <= 512");
  spec.add_constraint("tile <= block_size_y");
  return spec;
}

searchspace::query::Predicate view_restriction() {
  return searchspace::query::eq("sh_power", csp::Value(1)) &&
         searchspace::query::between("tile", csp::Value(1), csp::Value(3));
}

std::unique_ptr<tuner::Optimizer> make_optimizer(int which) {
  switch (which) {
    case 0: return std::make_unique<tuner::RandomSearch>();
    case 1: return std::make_unique<tuner::GeneticAlgorithm>();
    case 2: return std::make_unique<tuner::SimulatedAnnealing>();
    case 3: return std::make_unique<tuner::HillClimber>();
    case 4: return std::make_unique<tuner::DifferentialEvolution>();
    case 5: return std::make_unique<tuner::Nsga2>();
    default: return std::make_unique<tuner::SurrogateGuided>();
  }
}

tuner::TuningOptions fixed_options(std::uint64_t seed, double budget) {
  tuner::TuningOptions options;
  options.budget_seconds = budget;
  options.seed = seed;
  options.fixed_construction_seconds = 1.0;
  return options;
}

/// Largest possible virtual-time overshoot of the final evaluation: the
/// per-request overhead plus the clamped worst-case benchmark cost (see
/// PerformanceModel::evaluation_cost).
constexpr double kStraddle = 6.0;

}  // namespace

class OptimizerProperties
    : public ::testing::TestWithParam<std::tuple<int, bool>> {
 protected:
  static const searchspace::SearchSpace& space() {
    static const searchspace::SearchSpace s(property_spec());
    return s;
  }
  /// The tuned-over view: the whole space or a genuine restriction of it.
  searchspace::SubSpace view() const {
    if (!std::get<1>(GetParam())) return space();
    static const searchspace::SubSpace restricted =
        searchspace::SubSpace(space()).restrict(view_restriction());
    return restricted;
  }
  tuner::TuningRun tune(std::uint64_t seed, double budget) const {
    auto optimizer = make_optimizer(std::get<0>(GetParam()));
    tuner::HotspotModel model;
    return tuner::run_session(tuner::make_session_request(
        view(), model, *optimizer, fixed_options(seed, budget)));
  }
};

TEST_P(OptimizerProperties, ViewIsMeaningful) {
  ASSERT_GT(view().size(), 0u);
  if (std::get<1>(GetParam())) {
    ASSERT_LT(view().size(), space().size());  // the restriction really cuts
  }
}

TEST_P(OptimizerProperties, BudgetAlwaysRespected) {
  for (double budget : {1e-9, 25.0, 80.0}) {
    const auto run = tune(7, budget);
    EXPECT_EQ(run.budget_seconds, budget);
    for (const auto& pt : run.trajectory) {
      EXPECT_LE(pt.time_seconds, budget + kStraddle);
      EXPECT_LE(pt.evaluations, run.evaluations);
    }
    if (budget <= 1e-9) {
      EXPECT_EQ(run.evaluations, 0u);
      EXPECT_TRUE(run.trajectory.empty());
    }
    // An evaluation costs at least the request overhead, so the budget
    // bounds the total request count from above.
    tuner::TuningOptions options = fixed_options(7, budget);
    EXPECT_LE(static_cast<double>(run.evaluations) * options.overhead_per_request,
              budget + kStraddle);
  }
}

TEST_P(OptimizerProperties, TrajectoryMonotoneAndBestAtConsistent) {
  const auto run = tune(11, 120.0);
  ASSERT_FALSE(run.trajectory.empty());
  for (std::size_t i = 1; i < run.trajectory.size(); ++i) {
    EXPECT_GT(run.trajectory[i].best_gflops, run.trajectory[i - 1].best_gflops);
    EXPECT_GE(run.trajectory[i].time_seconds, run.trajectory[i - 1].time_seconds);
    EXPECT_GT(run.trajectory[i].evaluations, run.trajectory[i - 1].evaluations);
  }
  EXPECT_EQ(run.trajectory.back().best_gflops, run.best_gflops);

  // best_at replays the trajectory exactly: at, between, and outside points.
  EXPECT_EQ(run.best_at(run.trajectory.front().time_seconds - 1e-9), 0.0);
  for (const auto& pt : run.trajectory) {
    EXPECT_EQ(run.best_at(pt.time_seconds), pt.best_gflops);
    EXPECT_EQ(run.best_at(pt.time_seconds + 1e-9), pt.best_gflops);
  }
  EXPECT_EQ(run.best_at(run.budget_seconds + 1e6), run.best_gflops);
}

TEST_P(OptimizerProperties, IdenticalPerSeedAcrossRepeats) {
  EXPECT_EQ(tune(21, 90.0), tune(21, 90.0));
  // And genuinely seed-sensitive (the landscapes are multimodal, so two
  // seeds virtually never trace identical trajectories).
  EXPECT_NE(tune(21, 90.0).trajectory, tune(22, 90.0).trajectory);
}

TEST_P(OptimizerProperties, IdenticalUnderTheSessionManager) {
  const int which = std::get<0>(GetParam());
  const bool restricted = std::get<1>(GetParam());

  tuner::SessionRequest request;
  request.spec = property_spec();
  request.model = std::make_shared<tuner::HotspotModel>();
  request.make_optimizer = [which] { return make_optimizer(which); };
  request.options = fixed_options(33, 90.0);
  if (restricted) request.restriction = view_restriction();

  tuner::SessionManagerOptions manager_options;
  manager_options.workers = 2;
  tuner::SessionManager manager(manager_options);
  std::vector<tuner::SessionRequest> requests;
  requests.push_back(request);             // twin sessions share the space
  requests.push_back(std::move(request));
  const auto results = manager.run_all(std::move(requests));

  auto expected = tune(33, 90.0);
  expected.method_name = "optimized";  // the manager names the method
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].run, expected);
  EXPECT_EQ(results[1].run, expected);
  EXPECT_EQ(manager.spaces_built(), 1u);
  EXPECT_EQ(manager.spaces_shared(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    SevenOptimizersTimesFullAndView, OptimizerProperties,
    ::testing::Combine(::testing::Range(0, 7), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
      const char* name = "SurrogateGuided";
      switch (std::get<0>(info.param)) {
        case 0: name = "RandomSearch"; break;
        case 1: name = "GeneticAlgorithm"; break;
        case 2: name = "SimulatedAnnealing"; break;
        case 3: name = "HillClimber"; break;
        case 4: name = "DifferentialEvolution"; break;
        case 5: name = "Nsga2"; break;
        default: break;
      }
      return std::string(name) + (std::get<1>(info.param) ? "_View" : "_Full");
    });
