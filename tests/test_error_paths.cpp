// Error-path coverage for searchspace/io (per-section snapshot corruption,
// header field corruption, CSV rejection messages) and searchspace/query
// (unknown predicate names in every condition kind, the full behavior of
// empty-selection views).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tunespace/searchspace/io.hpp"
#include "tunespace/searchspace/neighbors.hpp"
#include "tunespace/searchspace/sampling.hpp"
#include "tunespace/searchspace/view.hpp"
#include "tunespace/tuner/runner.hpp"
#include "tunespace/tuner/session.hpp"
#include "tunespace/util/rng.hpp"

using namespace tunespace;
using searchspace::SnapshotError;
using searchspace::SnapshotVerify;

namespace {

tuner::TuningProblem tiny_spec() {
  tuner::TuningProblem spec("tiny");
  spec.add_param("a", {1, 2, 4, 8}).add_param("b", {1, 2, 3});
  spec.add_constraint("a * b <= 12");
  return spec;
}

// Binary layout constants of snapshot format version 1 (io.cpp): a
// 112-byte fixed header followed by four 32-byte section-table entries
// {id u32, reserved u32, offset u64, size u64, checksum u64}.
constexpr std::size_t kHeaderBytes = 112;
constexpr std::size_t kSectionEntryBytes = 32;
constexpr std::size_t kSectionCount = 4;

struct TempSnapshot {
  std::string dir = "test_error_paths_scratch";
  std::string path = dir + "/space.tss";
  tuner::TuningProblem spec = tiny_spec();

  TempSnapshot() {
    std::filesystem::create_directories(dir);
    const searchspace::SearchSpace space(spec);
    searchspace::save_snapshot(space, path);
  }
  ~TempSnapshot() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  std::string bytes() const {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
  }
  void write(const std::string& data, const std::string& name = "mutant.tss") {
    std::ofstream os(dir + "/" + name, std::ios::binary | std::ios::trunc);
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  std::string mutant() const { return dir + "/mutant.tss"; }

  std::uint64_t table_u64(const std::string& data, std::size_t section,
                          std::size_t field_offset) const {
    std::uint64_t v = 0;
    std::memcpy(&v, data.data() + kHeaderBytes + section * kSectionEntryBytes +
                        field_offset,
                sizeof v);
    return v;
  }
};

}  // namespace

// --- Snapshot corruption, section by section --------------------------------

TEST(SnapshotErrorPaths, EverySectionChecksumEnforcedUnderFullVerify) {
  TempSnapshot snap;
  const std::string original = snap.bytes();
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    const std::uint64_t offset = snap.table_u64(original, s, 8);
    const std::uint64_t size = snap.table_u64(original, s, 16);
    ASSERT_GT(size, 0u) << "section " << s + 1;
    std::string corrupt = original;
    corrupt[offset] ^= 0x2A;  // flip bits inside the section payload
    snap.write(corrupt);
    EXPECT_THROW(searchspace::load_snapshot(snap.spec, snap.mutant(),
                                            SnapshotVerify::kFull),
                 SnapshotError)
        << "section " << s + 1 << " corruption undetected";
  }
}

TEST(SnapshotErrorPaths, DomainsCorruptionCaughtEvenAtShapeLevel) {
  TempSnapshot snap;
  std::string corrupt = snap.bytes();
  corrupt[snap.table_u64(corrupt, 0, 8)] ^= 0x01;  // section 1 = domains
  snap.write(corrupt);
  EXPECT_THROW(searchspace::load_snapshot(snap.spec, snap.mutant(),
                                          SnapshotVerify::kShape),
               SnapshotError);
}

TEST(SnapshotErrorPaths, SectionTableOutOfBoundsRejected) {
  TempSnapshot snap;
  std::string corrupt = snap.bytes();
  const std::uint64_t huge = corrupt.size() * 2;
  std::memcpy(corrupt.data() + kHeaderBytes + 16, &huge, sizeof huge);  // size
  snap.write(corrupt);
  EXPECT_THROW(searchspace::load_snapshot(snap.spec, snap.mutant(),
                                          SnapshotVerify::kShape),
               SnapshotError);
}

TEST(SnapshotErrorPaths, MisalignedSectionOffsetRejected) {
  TempSnapshot snap;
  std::string corrupt = snap.bytes();
  std::uint64_t offset = snap.table_u64(corrupt, 1, 8) + 4;  // break 8-alignment
  std::memcpy(corrupt.data() + kHeaderBytes + kSectionEntryBytes + 8, &offset,
              sizeof offset);
  snap.write(corrupt);
  EXPECT_THROW(searchspace::load_snapshot(snap.spec, snap.mutant(),
                                          SnapshotVerify::kShape),
               SnapshotError);
}

TEST(SnapshotErrorPaths, CorruptSectionIdRejected) {
  TempSnapshot snap;
  std::string corrupt = snap.bytes();
  corrupt[kHeaderBytes] = 9;  // section ids must be 1..4 in order
  snap.write(corrupt);
  EXPECT_THROW(searchspace::load_snapshot(snap.spec, snap.mutant(),
                                          SnapshotVerify::kShape),
               SnapshotError);
}

TEST(SnapshotErrorPaths, ForeignEndiannessRejected) {
  TempSnapshot snap;
  std::string corrupt = snap.bytes();
  corrupt[12] ^= 0xFF;  // the endianness tag follows magic + version
  snap.write(corrupt);
  EXPECT_THROW(searchspace::load_snapshot(snap.spec, snap.mutant(),
                                          SnapshotVerify::kShape),
               SnapshotError);
}

TEST(SnapshotErrorPaths, ParamCountMismatchRejected) {
  TempSnapshot snap;
  std::string corrupt = snap.bytes();
  corrupt[24] ^= 0x01;  // #params field (offset 24: magic+ver+endian+fp)
  snap.write(corrupt);
  EXPECT_THROW(searchspace::load_snapshot(snap.spec, snap.mutant(),
                                          SnapshotVerify::kShape),
               SnapshotError);
}

TEST(SnapshotErrorPaths, LoadOrBuildFallsBackToAFreshBuildOnCorruption) {
  TempSnapshot snap;
  const searchspace::SearchSpace reference(snap.spec);
  // Replace the cache entry with a corrupted copy (domains flipped so even
  // the shape-level cache load detects it).
  const std::string entry = searchspace::snapshot_cache_entry(
      snap.dir, snap.spec, tuner::optimized_method());
  std::string corrupt = snap.bytes();
  corrupt[snap.table_u64(corrupt, 0, 8)] ^= 0x01;
  {
    std::ofstream os(entry, std::ios::binary | std::ios::trunc);
    os.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
  }
  const auto rebuilt =
      searchspace::SearchSpace::load_or_build(snap.spec, snap.dir);
  EXPECT_EQ(rebuilt.size(), reference.size());
  EXPECT_TRUE(rebuilt.solutions().same_solutions(reference.solutions()));
  // The rebuild repaired the cache entry: the next load is a clean hit.
  EXPECT_NO_THROW(searchspace::load_snapshot(snap.spec, entry,
                                             SnapshotVerify::kFull));
}

// --- CSV rejection messages --------------------------------------------------

TEST(CsvErrorPaths, HeaderMismatchesAreNamed) {
  const auto spec = tiny_spec();
  std::istringstream wrong_arity("a\n1\n");
  EXPECT_THROW(searchspace::read_csv(spec, wrong_arity), std::runtime_error);
  std::istringstream wrong_name("a,wrong\n1,1\n");
  try {
    searchspace::read_csv(spec, wrong_name);
    FAIL() << "header mismatch accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("header mismatch"), std::string::npos);
  }
  std::istringstream empty("");
  EXPECT_THROW(searchspace::read_csv(spec, empty), std::runtime_error);
}

TEST(CsvErrorPaths, OverlongRowAndForeignValueAreNamedWithTheirLine) {
  const auto spec = tiny_spec();
  std::istringstream overlong("a,b\n1,1,1\n");
  try {
    searchspace::read_csv(spec, overlong);
    FAIL() << "over-long row accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  std::istringstream foreign("a,b\n1,7\n");  // 7 is not in b's domain
  try {
    searchspace::read_csv(spec, foreign);
    FAIL() << "foreign value accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("not in domain"), std::string::npos);
    EXPECT_NE(what.find("b"), std::string::npos);
  }
  std::istringstream malformed("a,b\n1,zzz\n");
  EXPECT_THROW(searchspace::read_csv(spec, malformed), std::runtime_error);
}

TEST(CsvErrorPaths, UnwritablePathThrows) {
  const searchspace::SearchSpace space(tiny_spec());
  EXPECT_THROW(
      searchspace::write_csv(space, "definitely_missing_dir/out.csv"),
      std::runtime_error);
}

// --- Unknown predicate names -------------------------------------------------

TEST(QueryErrorPaths, UnknownParameterNamesThrowInEveryConditionKind) {
  const searchspace::SearchSpace space(tiny_spec());
  const auto expect_unknown = [&](const searchspace::query::Predicate& pred) {
    EXPECT_THROW(searchspace::query::compile(pred, space.problem()),
                 std::out_of_range);
    EXPECT_THROW(searchspace::SubSpace(space).restrict(pred), std::out_of_range);
  };
  expect_unknown(searchspace::query::eq("nope", csp::Value(1)));
  expect_unknown(searchspace::query::in_set("nope", {csp::Value(1)}));
  expect_unknown(
      searchspace::query::between("nope", csp::Value(1), csp::Value(2)));
  // A single unknown name poisons a conjunction even when the other
  // conjuncts are valid.
  expect_unknown(searchspace::query::eq("a", csp::Value(1)) &&
                 searchspace::query::eq("nope", csp::Value(1)));
}

// --- Empty-selection views ---------------------------------------------------

TEST(EmptyViewBehavior, AllAccessorsAreWellDefined) {
  const searchspace::SearchSpace space(tiny_spec());
  const auto empty = searchspace::SubSpace(space).restrict(
      searchspace::query::eq("a", csp::Value(64)));  // value not in domain
  ASSERT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_FALSE(empty.is_whole());
  EXPECT_TRUE(empty.selection().empty());
  EXPECT_TRUE(empty.top_rows(10).empty());
  EXPECT_FALSE(empty.local_of(0).has_value());
  EXPECT_FALSE(empty.find({0, 0}).has_value());
  for (std::size_t p = 0; p < empty.num_params(); ++p) {
    EXPECT_TRUE(empty.present_values(p).empty());
    EXPECT_TRUE(empty.project(p).empty());
  }
}

TEST(EmptyViewBehavior, RestrictingAnEmptyViewStaysEmpty) {
  const searchspace::SearchSpace space(tiny_spec());
  const auto empty = searchspace::SubSpace(space).restrict(
      searchspace::query::eq("a", csp::Value(64)));
  searchspace::query::QueryStats stats;
  const auto narrower =
      empty.restrict(searchspace::query::eq("b", csp::Value(1)), {}, &stats);
  EXPECT_TRUE(narrower.empty());
  EXPECT_EQ(stats.rows_out, 0u);
  EXPECT_EQ(stats.candidate_rows, 0u);
}

TEST(EmptyViewBehavior, SamplingAndTuningOverAnEmptyViewAreNoOps) {
  const searchspace::SearchSpace space(tiny_spec());
  const auto empty = searchspace::SubSpace(space).restrict(
      searchspace::query::eq("a", csp::Value(64)));
  util::Rng rng(1);
  EXPECT_TRUE(searchspace::random_sample(empty, 0, rng).empty());

  tuner::RandomSearch rs;
  tuner::HotspotModel model;
  tuner::TuningOptions options;
  options.budget_seconds = 50.0;
  const auto run =
      tuner::run_session(tuner::make_session_request(empty, model, rs, options));
  EXPECT_EQ(run.evaluations, 0u);
  EXPECT_TRUE(run.trajectory.empty());
  EXPECT_EQ(run.best_gflops, 0.0);
}
