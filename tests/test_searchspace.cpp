// Tests for the SearchSpace representation layer (§4.4).
#include <gtest/gtest.h>

#include "tunespace/searchspace/searchspace.hpp"

using namespace tunespace;
using csp::Value;
using searchspace::SearchSpace;

namespace {

tuner::TuningProblem block_spec() {
  tuner::TuningProblem spec("blocks");
  spec.add_param("block_size_x", {1, 2, 4, 8, 16, 32})
      .add_param("block_size_y", {1, 2, 4, 8})
      .add_param("unroll", {1, 2});
  spec.add_constraint("4 <= block_size_x * block_size_y <= 32");
  return spec;
}

}  // namespace

TEST(SearchSpaceTest, ConstructionResolvesAllSolutions) {
  SearchSpace space(block_spec());
  // Count by hand: pairs (x, y) with 4 <= x*y <= 32, times 2 unroll values.
  std::size_t pairs = 0;
  for (int x : {1, 2, 4, 8, 16, 32}) {
    for (int y : {1, 2, 4, 8}) {
      if (x * y >= 4 && x * y <= 32) ++pairs;
    }
  }
  EXPECT_EQ(space.size(), pairs * 2);
  EXPECT_EQ(space.num_params(), 3u);
  EXPECT_EQ(space.cartesian_size(), 48u);
  EXPECT_GT(space.sparsity(), 0.0);
  EXPECT_GT(space.construction_seconds(), 0.0);
}

TEST(SearchSpaceTest, ConfigAndValueAccess) {
  SearchSpace space(block_spec());
  for (std::size_t r = 0; r < space.size(); ++r) {
    const csp::Config config = space.config(r);
    ASSERT_EQ(config.size(), 3u);
    const std::int64_t prod = config[0].as_int() * config[1].as_int();
    EXPECT_GE(prod, 4);
    EXPECT_LE(prod, 32);
    EXPECT_EQ(space.value(r, 0), config[0]);
  }
}

TEST(SearchSpaceTest, FindRoundTripsEveryRow) {
  SearchSpace space(block_spec());
  for (std::size_t r = 0; r < space.size(); ++r) {
    auto found = space.find(space.indices(r));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, r);
  }
}

TEST(SearchSpaceTest, FindRejectsInvalidConfigs) {
  SearchSpace space(block_spec());
  // (1, 1, *) violates the lower product bound.
  EXPECT_FALSE(space.find_config({Value(1), Value(1), Value(1)}).has_value());
  // Value outside the declared domain.
  EXPECT_FALSE(space.find_config({Value(3), Value(2), Value(1)}).has_value());
  // Valid one resolves.
  EXPECT_TRUE(space.find_config({Value(4), Value(2), Value(1)}).has_value());
}

TEST(SearchSpaceTest, TrueBounds) {
  SearchSpace space(block_spec());
  // block_size_x = 1 requires y >= 4: still present (1*4, 1*8).
  // Every declared x value can participate; but for y, y=1 requires x >= 4.
  const auto& present_y = space.present_values(1);
  // y=1 occurs (e.g. x=4); all four y values should appear.
  EXPECT_EQ(present_y.size(), 4u);
  // Check a restricted case: tighten to x*y >= 16.
  tuner::TuningProblem tight("tight");
  tight.add_param("x", {1, 2, 4})
      .add_param("y", {1, 2, 4});
  tight.add_constraint("x * y >= 8");
  SearchSpace tight_space(tight);
  // x=1 never appears (max product 4); true bounds exclude it.
  EXPECT_EQ(tight_space.present_values(0),
            (std::vector<std::uint32_t>{1, 2}));
}

TEST(SearchSpaceTest, PostingListsPartitionRows) {
  SearchSpace space(block_spec());
  for (std::size_t p = 0; p < space.num_params(); ++p) {
    std::size_t total = 0;
    for (std::uint32_t vi = 0; vi < space.problem().domain(p).size(); ++vi) {
      total += space.rows_with(p, vi).size();
    }
    EXPECT_EQ(total, space.size());
  }
}

TEST(SearchSpaceTest, EmptySpace) {
  tuner::TuningProblem spec("empty");
  spec.add_param("x", {1, 2}).add_param("y", {1, 2});
  spec.add_constraint("x * y >= 100");
  SearchSpace space(spec);
  EXPECT_TRUE(space.empty());
  EXPECT_FALSE(space.find({0, 0}).has_value());
}

TEST(SearchSpaceTest, MethodSelectionProducesSameSpace) {
  for (auto& method : tuner::construction_methods(false)) {
    SearchSpace space(block_spec(), method);
    SearchSpace reference(block_spec());
    EXPECT_EQ(space.size(), reference.size()) << method.name;
  }
}

TEST(SearchSpaceTest, SolveStatsExposed) {
  SearchSpace space(block_spec());
  EXPECT_GT(space.solve_stats().nodes, 0u);
}
