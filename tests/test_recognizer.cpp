// Tests for the specific-constraint recognizer (§4.2 Step 3 / §4.3.2):
// the mapped constraint class, and semantic equivalence with direct
// expression evaluation.
#include <gtest/gtest.h>

#include "tunespace/csp/builtin_constraints.hpp"
#include "tunespace/expr/analysis.hpp"
#include "tunespace/expr/interpreter.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/expr/recognizer.hpp"
#include "tunespace/util/rng.hpp"

using namespace tunespace;
using namespace tunespace::expr;
using csp::Value;

namespace {

csp::ConstraintPtr rec(const std::string& src) { return recognize(parse(src)); }

template <typename T>
void expect_kind(const std::string& src) {
  auto c = rec(src);
  EXPECT_NE(dynamic_cast<T*>(c.get()), nullptr)
      << src << " recognized as " << c->describe();
}

}  // namespace

TEST(Recognizer, Products) {
  expect_kind<csp::ProductConstraint>("a * b <= 1024");
  expect_kind<csp::ProductConstraint>("a * b >= 32");
  expect_kind<csp::ProductConstraint>("a * b * c == 64");
  expect_kind<csp::ProductConstraint>("2 * a * b <= 100");  // positive coeff
  expect_kind<csp::ProductConstraint>("1024 >= a * b");     // const on left
}

TEST(Recognizer, RecognizedProductOps) {
  auto c = rec("a * b <= 1024");
  auto* p = dynamic_cast<csp::ProductConstraint*>(c.get());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->op(), csp::CmpOp::Le);
  EXPECT_DOUBLE_EQ(p->bound(), 1024.0);
}

TEST(Recognizer, Sums) {
  expect_kind<csp::SumConstraint>("a + b <= 10");
  expect_kind<csp::SumConstraint>("a + 2 * b >= 4");
  expect_kind<csp::SumConstraint>("a - b <= 0 + 5");
  expect_kind<csp::SumConstraint>("x <= 5");       // single-var as weighted sum
  expect_kind<csp::SumConstraint>("3 * x >= 12");  // scaled single var
}

TEST(Recognizer, SumConstantTermFoldsIntoBound) {
  auto c = rec("a + b + 3 <= 10");
  auto* s = dynamic_cast<csp::SumConstraint*>(c.get());
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->bound(), 7.0);
}

TEST(Recognizer, VarComparison) {
  expect_kind<csp::VarComparison>("a <= b");
  expect_kind<csp::VarComparison>("a == b");
  expect_kind<csp::VarComparison>("a != b");
}

TEST(Recognizer, Divisibility) {
  expect_kind<csp::Divisibility>("a % b == 0");
  expect_kind<csp::Divisibility>("a % 4 == 0");
}

TEST(Recognizer, Membership) {
  expect_kind<csp::InSet>("x in (1, 2, 4)");
  expect_kind<csp::InSet>("x not in (3, 5)");
  expect_kind<csp::InSet>("layout == 'NHWC'");
  expect_kind<csp::InSet>("layout != 'NCHW'");
}

TEST(Recognizer, ConstantsFold) {
  auto t = rec("2 + 2 == 4");
  auto* cb = dynamic_cast<csp::ConstBool*>(t.get());
  ASSERT_NE(cb, nullptr);
  EXPECT_TRUE(cb->value());
  auto f = rec("1 > 2");
  auto* cf = dynamic_cast<csp::ConstBool*>(f.get());
  ASSERT_NE(cf, nullptr);
  EXPECT_FALSE(cf->value());
}

TEST(Recognizer, FallbackToFunction) {
  expect_kind<FunctionConstraint>("a * a <= 16");       // repeated variable
  expect_kind<FunctionConstraint>("a // b == 2");       // floor division
  expect_kind<FunctionConstraint>("a <= 1 or b >= 5");  // disjunction
  expect_kind<FunctionConstraint>("min(a, b) <= 4");    // call
  expect_kind<FunctionConstraint>("-a * b <= 4");       // negative coefficient
}

TEST(Recognizer, OptimizeConstraintPipeline) {
  // The Fig. 1 example: decompose + recognize.
  auto cs = optimize_constraint(
      parse("2 <= block_size_y <= 32 <= block_size_x * block_size_y <= 1024"));
  ASSERT_EQ(cs.size(), 4u);
  EXPECT_NE(dynamic_cast<csp::SumConstraint*>(cs[0].get()), nullptr);      // 2 <= y
  EXPECT_NE(dynamic_cast<csp::SumConstraint*>(cs[1].get()), nullptr);      // y <= 32
  EXPECT_NE(dynamic_cast<csp::ProductConstraint*>(cs[2].get()), nullptr);  // x*y >= 32
  EXPECT_NE(dynamic_cast<csp::ProductConstraint*>(cs[3].get()), nullptr);  // x*y <= 1024
}

TEST(Recognizer, OptimizeDropsTautologies) {
  auto cs = optimize_constraint(parse("1 <= 2 and a <= 5"));
  ASSERT_EQ(cs.size(), 1u);
}

// Property: recognized constraints agree with direct evaluation of the
// source expression on random full assignments.
class RecognizerEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(RecognizerEquivalence, AgreesWithEvaluation) {
  const std::string src = GetParam();
  const AstPtr ast = parse(src);
  const auto names = variables(*ast);
  csp::ConstraintPtr c = recognize(ast);
  // Bind scope names to the order in `names`.
  std::vector<std::uint32_t> indices;
  for (const auto& v : c->scope()) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == v) indices.push_back(static_cast<std::uint32_t>(i));
    }
  }
  c->bind(indices);
  tunespace::util::Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Value> values;
    std::unordered_map<std::string, Value> vars;
    for (const auto& n : names) {
      const Value v(rng.uniform_int(1, 40));
      values.push_back(v);
      vars[n] = v;
    }
    bool expected;
    try {
      expected = eval_bool(*ast, map_env(vars));
    } catch (const EvalError&) {
      expected = false;
    }
    EXPECT_EQ(expected, c->satisfied(values.data())) << src;
  }
}

INSTANTIATE_TEST_SUITE_P(Expressions, RecognizerEquivalence,
                         ::testing::Values("a * b <= 300",
                                           "a * b * c >= 64",
                                           "2 * a * b == 40",
                                           "a + b - 2 * c <= 12",
                                           "a <= b",
                                           "a != b",
                                           "a % b == 0",
                                           "a % 4 == 0",
                                           "a in (1, 2, 4, 8)",
                                           "a not in (3, 9, 27)",
                                           "x <= 17",
                                           "5 >= x"));
