// Compile-and-smoke test for the umbrella header: every public subsystem is
// reachable through <tunespace/tunespace.hpp> and interoperates.
#include <gtest/gtest.h>

#include "tunespace/tunespace.hpp"

using namespace tunespace;

TEST(Umbrella, EndToEndThroughSingleInclude) {
  tuner::TuningProblem spec("umbrella");
  spec.add_param("x", {1, 2, 4, 8}).add_param("y", {1, 2, 4});
  spec.add_constraint("2 <= x * y <= 16");
  searchspace::SearchSpace space(spec);
  EXPECT_GT(space.size(), 0u);

  util::Rng rng(1);
  auto sample = searchspace::random_sample(space, 3, rng);
  EXPECT_EQ(sample.size(), 3u);

  tuner::SyntheticModel model(5);
  tuner::RandomSearch optimizer;
  tuner::TuningOptions options;
  options.budget_seconds = 10.0;
  auto methods = tuner::construction_methods(false);
  auto run = tuner::run_session(
      tuner::make_session_request(spec, methods[0], model, optimizer, options));
  EXPECT_GT(run.best_gflops, 0.0);
}
