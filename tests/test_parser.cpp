// Unit tests for the expression parser: precedence, chaining, round-trips.
#include <gtest/gtest.h>

#include "tunespace/expr/parser.hpp"

using namespace tunespace::expr;

namespace {
// Round-trip helper: parse(to_string(parse(src))) must be structurally equal.
void expect_roundtrip(const std::string& src) {
  const AstPtr a = parse(src);
  const AstPtr b = parse(a->to_string());
  EXPECT_TRUE(a->equals(*b)) << src << " -> " << a->to_string();
}
}  // namespace

TEST(Parser, Precedence) {
  // a + b * c parses as a + (b * c)
  AstPtr e = parse("a + b * c");
  ASSERT_EQ(e->kind, AstKind::Binary);
  EXPECT_EQ(e->bin_op, BinOp::Add);
  EXPECT_EQ(e->children[1]->bin_op, BinOp::Mul);
}

TEST(Parser, PowerRightAssociative) {
  AstPtr e = parse("2 ** 3 ** 2");
  ASSERT_EQ(e->kind, AstKind::Binary);
  EXPECT_EQ(e->bin_op, BinOp::Pow);
  EXPECT_EQ(e->children[1]->bin_op, BinOp::Pow);
}

TEST(Parser, UnaryBindsTighterThanMul) {
  AstPtr e = parse("-a * b");
  EXPECT_EQ(e->kind, AstKind::Binary);
  EXPECT_EQ(e->bin_op, BinOp::Mul);
  EXPECT_EQ(e->children[0]->kind, AstKind::Unary);
}

TEST(Parser, ComparisonChain) {
  AstPtr e = parse("2 <= y <= 32 <= x * y <= 1024");
  ASSERT_EQ(e->kind, AstKind::Compare);
  EXPECT_EQ(e->cmp_ops.size(), 4u);
  EXPECT_EQ(e->children.size(), 5u);
}

TEST(Parser, BooleanPrecedence) {
  // not binds tighter than and, and tighter than or.
  AstPtr e = parse("a or not b and c");
  ASSERT_EQ(e->kind, AstKind::BoolOp);
  EXPECT_FALSE(e->is_and);
  const AstPtr& rhs = e->children[1];
  ASSERT_EQ(rhs->kind, AstKind::BoolOp);
  EXPECT_TRUE(rhs->is_and);
  EXPECT_EQ(rhs->children[0]->kind, AstKind::Unary);
}

TEST(Parser, MembershipTuple) {
  AstPtr e = parse("x in (1, 2, 4)");
  ASSERT_EQ(e->kind, AstKind::Compare);
  EXPECT_EQ(e->cmp_ops[0], CompareOp::In);
  EXPECT_EQ(e->children[1]->kind, AstKind::Tuple);
  EXPECT_EQ(e->children[1]->children.size(), 3u);
}

TEST(Parser, NotIn) {
  AstPtr e = parse("x not in (1, 2)");
  ASSERT_EQ(e->kind, AstKind::Compare);
  EXPECT_EQ(e->cmp_ops[0], CompareOp::NotIn);
}

TEST(Parser, ListLiteral) {
  AstPtr e = parse("x in [1, 2, 4]");
  EXPECT_EQ(e->children[1]->kind, AstKind::Tuple);
}

TEST(Parser, SubscriptStyle) {
  // Kernel Tuner lambda style: p["name"] is the parameter named "name".
  AstPtr e = parse("32 <= p[\"block_size_x\"] * p[\"block_size_y\"]");
  ASSERT_EQ(e->kind, AstKind::Compare);
  const AstPtr& prod = e->children[1];
  EXPECT_EQ(prod->children[0]->name, "block_size_x");
  EXPECT_EQ(prod->children[1]->name, "block_size_y");
}

TEST(Parser, Calls) {
  AstPtr e = parse("min(a, b) + max(1, 2, 3)");
  EXPECT_EQ(e->children[0]->kind, AstKind::Call);
  EXPECT_EQ(e->children[0]->name, "min");
  EXPECT_EQ(e->children[1]->children.size(), 3u);
}

TEST(Parser, ParenGroupIsNotTuple) {
  AstPtr e = parse("(a + b) * c");
  EXPECT_EQ(e->kind, AstKind::Binary);
  EXPECT_EQ(e->bin_op, BinOp::Mul);
}

TEST(Parser, SingletonTupleWithTrailingComma) {
  AstPtr e = parse("x in (4,)");
  EXPECT_EQ(e->children[1]->kind, AstKind::Tuple);
  EXPECT_EQ(e->children[1]->children.size(), 1u);
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse(""), SyntaxError);
  EXPECT_THROW(parse("a +"), SyntaxError);
  EXPECT_THROW(parse("a b"), SyntaxError);
  EXPECT_THROW(parse("(a"), SyntaxError);
  EXPECT_THROW(parse("f(a,"), SyntaxError);
  EXPECT_THROW(parse("p[3]"), SyntaxError);  // subscript must be a string
}

TEST(Parser, RoundTrips) {
  for (const char* src : {
           "a + b * c - d / e",
           "a // b % c ** d",
           "2 <= y <= 32 <= x * y <= 1024",
           "not (a and b) or c",
           "x in (1, 2, 4) and y not in (3,)",
           "min(a, max(b, c)) >= abs(d)",
           "-x ** 2",
           "(a + b) * (c - d)",
           "True and False or x == 'NHWC'",
       }) {
    expect_roundtrip(src);
  }
}
