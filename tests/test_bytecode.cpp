// Tests for the bytecode compiler + VM, including the interpreter-equivalence
// property sweep (the VM must agree with the tree interpreter on every
// expression and assignment).
#include <gtest/gtest.h>

#include "tunespace/expr/compiler.hpp"
#include "tunespace/expr/interpreter.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/util/rng.hpp"

using namespace tunespace::expr;
using tunespace::csp::Value;

namespace {

Value run_compiled(const std::string& src,
                   const std::vector<std::pair<std::string, Value>>& vars = {}) {
  Program prog = compile(parse(src));
  // Map program slots to the provided variable order.
  std::vector<Value> values;
  std::vector<std::uint32_t> slot_map;
  for (const auto& name : prog.var_names()) {
    bool found = false;
    for (const auto& [n, v] : vars) {
      if (n == name) {
        slot_map.push_back(static_cast<std::uint32_t>(values.size()));
        values.push_back(v);
        found = true;
        break;
      }
    }
    if (!found) throw std::runtime_error("missing var " + name);
  }
  return prog.run(values.data(), slot_map.data());
}

}  // namespace

TEST(Bytecode, ConstantExpressions) {
  EXPECT_EQ(run_compiled("2 + 3 * 4"), Value(14));
  EXPECT_EQ(run_compiled("2 ** 10"), Value(1024));
  EXPECT_EQ(run_compiled("-7 // 2"), Value(-4));
  EXPECT_EQ(run_compiled("-7 % 3"), Value(2));
}

TEST(Bytecode, Variables) {
  EXPECT_EQ(run_compiled("x * y + 1", {{"x", Value(6)}, {"y", Value(7)}}),
            Value(43));
}

TEST(Bytecode, ChainedComparisons) {
  EXPECT_EQ(run_compiled("1 < x < 10", {{"x", Value(5)}}), Value(true));
  EXPECT_EQ(run_compiled("1 < x < 10", {{"x", Value(10)}}), Value(false));
  EXPECT_EQ(run_compiled("1 < x < 10", {{"x", Value(1)}}), Value(false));
  EXPECT_EQ(run_compiled("2 <= y <= 32 <= x * y <= 1024",
                         {{"x", Value(8)}, {"y", Value(8)}}),
            Value(true));
}

TEST(Bytecode, ChainShortCircuitSkipsDivZero) {
  EXPECT_EQ(run_compiled("3 < 2 < 1 / 0"), Value(false));
}

TEST(Bytecode, BoolOpsShortCircuit) {
  EXPECT_EQ(run_compiled("False and 1 / 0"), Value(false));
  EXPECT_EQ(run_compiled("True or 1 / 0"), Value(true));
  EXPECT_EQ(run_compiled("x > 0 and x < 10", {{"x", Value(5)}}), Value(true));
}

TEST(Bytecode, Membership) {
  EXPECT_EQ(run_compiled("x in (1, 2, 4)", {{"x", Value(4)}}), Value(true));
  EXPECT_EQ(run_compiled("x not in (1, 2, 4)", {{"x", Value(3)}}), Value(true));
}

TEST(Bytecode, Calls) {
  EXPECT_EQ(run_compiled("min(x, 3)", {{"x", Value(5)}}), Value(3));
  EXPECT_EQ(run_compiled("max(x, 3, 7)", {{"x", Value(5)}}), Value(7));
  EXPECT_EQ(run_compiled("abs(x)", {{"x", Value(-9)}}), Value(9));
  EXPECT_EQ(run_compiled("gcd(x, 18)", {{"x", Value(12)}}), Value(6));
}

TEST(Bytecode, ConstantFolding) {
  // The folded program for a constant expression should be tiny.
  Program p = compile(parse("2 * 3 + 4 * (5 - 1)"));
  EXPECT_LE(p.code().size(), 2u);  // PushConst + Return
}

TEST(Bytecode, FoldingKeepsRaisingSubtrees) {
  // 1/0 must raise at run time, not at compile time.
  Program p = compile(parse("1 / 0"));
  std::vector<std::uint32_t> empty;
  EXPECT_THROW(p.run(nullptr, empty.data()), EvalError);
}

TEST(Bytecode, NonConstTupleFailsCompilation) {
  EXPECT_THROW(compile(parse("x in (y, 2)")), CompileError);
}

TEST(Bytecode, Disassembly) {
  Program p = compile(parse("x * 2 <= 10"));
  const std::string dis = p.disassemble();
  EXPECT_NE(dis.find("LoadVar x"), std::string::npos);
  EXPECT_NE(dis.find("Return"), std::string::npos);
}

// --- Property sweep: VM == interpreter on randomized expressions -----------

namespace {

/// Build a random expression string over variables a, b, c with small
/// integer constants.  Division-free to avoid raising-vs-false asymmetries
/// (raising parity is tested separately).
std::string random_expr(tunespace::util::Rng& rng, int depth) {
  if (depth <= 0) {
    switch (rng.index(4)) {
      case 0: return "a";
      case 1: return "b";
      case 2: return "c";
      default: return std::to_string(rng.uniform_int(0, 9));
    }
  }
  switch (rng.index(8)) {
    case 0:
      return "(" + random_expr(rng, depth - 1) + " + " +
             random_expr(rng, depth - 1) + ")";
    case 1:
      return "(" + random_expr(rng, depth - 1) + " - " +
             random_expr(rng, depth - 1) + ")";
    case 2:
      return "(" + random_expr(rng, depth - 1) + " * " +
             random_expr(rng, depth - 1) + ")";
    case 3:
      return "(" + random_expr(rng, depth - 1) + " <= " +
             random_expr(rng, depth - 1) + ")";
    case 4:
      return "(" + random_expr(rng, depth - 1) + " < " + random_expr(rng, depth - 1) +
             " < " + random_expr(rng, depth - 1) + ")";
    case 5:
      return "(" + random_expr(rng, depth - 1) + " and " +
             random_expr(rng, depth - 1) + ")";
    case 6:
      return "(" + random_expr(rng, depth - 1) + " or " +
             random_expr(rng, depth - 1) + ")";
    default:
      return "min(" + random_expr(rng, depth - 1) + ", " +
             random_expr(rng, depth - 1) + ")";
  }
}

}  // namespace

class BytecodeEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BytecodeEquivalence, MatchesInterpreterOnRandomExpressions) {
  tunespace::util::Rng rng(1234 + static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 40; ++iter) {
    const std::string src = random_expr(rng, 3);
    const AstPtr ast = parse(src);
    Program prog = compile(ast);
    for (int trial = 0; trial < 8; ++trial) {
      std::unordered_map<std::string, Value> vars{
          {"a", Value(rng.uniform_int(-4, 12))},
          {"b", Value(rng.uniform_int(-4, 12))},
          {"c", Value(rng.uniform_int(-4, 12))}};
      const Value expected = eval(*ast, map_env(vars));
      std::vector<Value> values;
      std::vector<std::uint32_t> slots;
      for (const auto& name : prog.var_names()) {
        slots.push_back(static_cast<std::uint32_t>(values.size()));
        values.push_back(vars.at(name));
      }
      const Value got = prog.run(values.data(), slots.data());
      // Compare truthiness and (when numeric on both sides) value.
      EXPECT_EQ(expected.truthy(), got.truthy()) << src;
      if (expected.is_numeric() && got.is_numeric()) {
        EXPECT_DOUBLE_EQ(expected.as_real(), got.as_real()) << src;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytecodeEquivalence, ::testing::Range(0, 8));
