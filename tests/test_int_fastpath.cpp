// Differential tests for the typed int64 fast-path pipeline: the
// type-inference pass (int_closed), the IntProgram lowering/VM, the
// constraint-level specialization, and the solver integration.
//
// The core property: for every integer-closed expression and every integer
// assignment, IntProgram must agree with the boxed bytecode VM and the tree
// interpreter — either producing the same value, or poisoning and deferring
// to the boxed path (whose escapes, like division by zero and overflow
// promotion to real, are the reference semantics).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>

#include "tunespace/csp/builtin_constraints.hpp"
#include "tunespace/csp/problem.hpp"
#include "tunespace/expr/analysis.hpp"
#include "tunespace/expr/compiler.hpp"
#include "tunespace/expr/function_constraint.hpp"
#include "tunespace/expr/int_program.hpp"
#include "tunespace/expr/int_program_block.hpp"
#include "tunespace/expr/interpreter.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/solver/parallel_backtracking.hpp"
#include "tunespace/util/rng.hpp"

using namespace tunespace;
using namespace tunespace::expr;
using csp::Value;

namespace {

const char* const kVarNames[] = {"x", "y", "z"};
constexpr std::size_t kNumVars = 3;

/// Random integer-closed AST generator.  Depth-bounded; leans on the operators
/// whose fast-path semantics have dynamic escapes (//, %, **, gcd) so the
/// poison protocol gets real coverage.
AstPtr random_int_expr(util::Rng& rng, int depth) {
  const auto leaf = [&]() -> AstPtr {
    if (rng.uniform_int(0, 1) == 0) {
      return make_var(kVarNames[rng.uniform_int(0, kNumVars - 1)]);
    }
    return make_literal(Value(static_cast<std::int64_t>(rng.uniform_int(-6, 40))));
  };
  if (depth <= 0) return leaf();
  switch (rng.uniform_int(0, 9)) {
    case 0:
    case 1:
      return leaf();
    case 2: {
      static const BinOp kOps[] = {BinOp::Add, BinOp::Sub, BinOp::Mul,
                                   BinOp::FloorDiv, BinOp::Mod, BinOp::Pow};
      return make_binary(kOps[rng.uniform_int(0, 5)],
                         random_int_expr(rng, depth - 1),
                         random_int_expr(rng, depth - 1));
    }
    case 3:
      return make_unary(rng.uniform_int(0, 1) ? UnOp::Neg : UnOp::Not,
                        random_int_expr(rng, depth - 1));
    case 4: {
      static const CompareOp kOps[] = {CompareOp::Lt, CompareOp::Le,
                                       CompareOp::Gt, CompareOp::Ge,
                                       CompareOp::Eq, CompareOp::Ne};
      if (rng.uniform_int(0, 3) == 0) {
        // Chained comparison: a op b op c.
        return make_compare({random_int_expr(rng, depth - 1),
                             random_int_expr(rng, depth - 1),
                             random_int_expr(rng, depth - 1)},
                            {kOps[rng.uniform_int(0, 5)],
                             kOps[rng.uniform_int(0, 5)]});
      }
      return make_compare({random_int_expr(rng, depth - 1),
                           random_int_expr(rng, depth - 1)},
                          {kOps[rng.uniform_int(0, 5)]});
    }
    case 5:
      return make_bool_op(rng.uniform_int(0, 1) == 0,
                          {random_int_expr(rng, depth - 1),
                           random_int_expr(rng, depth - 1)});
    case 6: {
      static const char* kCalls[] = {"min", "max", "abs", "gcd", "int", "pow"};
      const char* name = kCalls[rng.uniform_int(0, 5)];
      if (std::string(name) == "abs" || std::string(name) == "int") {
        return make_call(name, {random_int_expr(rng, depth - 1)});
      }
      return make_call(name, {random_int_expr(rng, depth - 1),
                              random_int_expr(rng, depth - 1)});
    }
    case 7: {
      // Membership over a random int tuple (sometimes dense -> bitset).
      std::vector<AstPtr> elements;
      const int count = rng.uniform_int(1, 6);
      const int base = rng.uniform_int(-4, 16);
      for (int i = 0; i < count; ++i) {
        elements.push_back(make_literal(
            Value(static_cast<std::int64_t>(base + rng.uniform_int(0, 8000)))));
      }
      return make_compare(
          {random_int_expr(rng, depth - 1), make_tuple(std::move(elements))},
          {rng.uniform_int(0, 1) ? CompareOp::In : CompareOp::NotIn});
    }
    case 8:
      return make_if_else(random_int_expr(rng, depth - 1),
                          random_int_expr(rng, depth - 1),
                          random_int_expr(rng, depth - 1));
    default:
      return leaf();
  }
}

struct EvalOutcome {
  std::optional<Value> value;  // nullopt => EvalError
};

/// Value equality for test purposes: like operator==, but NaN agrees with
/// NaN (two evaluators both producing NaN, e.g. via inf * 0, do agree).
bool values_agree(const Value& a, const Value& b) {
  if (a.is_real() && b.is_real() && std::isnan(a.as_real()) &&
      std::isnan(b.as_real())) {
    return true;
  }
  return a == b;
}

EvalOutcome run_boxed(const Program& prog, const std::vector<Value>& values,
                      const std::vector<std::uint32_t>& slots) {
  try {
    return {prog.run(values.data(), slots.data())};
  } catch (const EvalError&) {
    return {std::nullopt};
  }
}

EvalOutcome run_tree(const Ast& ast,
                     const std::unordered_map<std::string, Value>& vars) {
  try {
    return {eval(ast, map_env(vars))};
  } catch (const EvalError&) {
    return {std::nullopt};
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Type inference (int_closed)
// ---------------------------------------------------------------------------

TEST(IntClosed, AcceptsIntegerArithmeticComparisonsAndMembership) {
  for (const char* src :
       {"x * y + 1", "x // y - y % 3", "x ** 2 <= 1024", "min(x, y) < max(y, 4)",
        "abs(x - y) > 2", "gcd(x, y) == 1", "x in (1, 2, 4, 8)",
        "1 < x < 32 and not (y == 3 or x != y)", "int(x) + 1"}) {
    EXPECT_TRUE(int_closed(compile(parse(src)))) << src;
  }
}

TEST(IntClosed, RejectsRealAndStringProducers) {
  for (const char* src :
       {"x / y > 2",            // TrueDiv is inherently real
        "float(x) > 1",         // CallFloat
        "x * 1.5 < 8",          // real constant
        "x == 'NHWC'",          // string constant
        "x in (1, 2.5, 4)"}) {  // real tuple element: lossy boxed equality
    EXPECT_FALSE(int_closed(compile(parse(src)))) << src;
  }
}

TEST(IntClosed, StringTupleElementsAreDroppableNotRejecting) {
  // str == int is exactly false, so string elements are simply unreachable.
  const Program prog = compile(parse("x in (1, 'NHWC', 4)"));
  EXPECT_TRUE(int_closed(prog));
  auto lowered = IntProgram::lower(prog);
  ASSERT_TRUE(lowered.has_value());
  std::int64_t r = -1;
  const std::int64_t vals[] = {4};
  const std::uint32_t slots[] = {0};
  ASSERT_TRUE(lowered->run(vals, slots, &r));
  EXPECT_EQ(r, 1);
}

// ---------------------------------------------------------------------------
// IntProgram lowering + VM
// ---------------------------------------------------------------------------

TEST(IntProgram, DivByZeroPoisonsAndBoxedPathRaises) {
  const Program prog = compile(parse("x // y == 2"));
  auto lowered = IntProgram::lower(prog);
  ASSERT_TRUE(lowered.has_value());

  std::vector<std::uint32_t> slots;
  std::vector<std::int64_t> ints;
  std::vector<Value> boxed;
  for (const auto& name : prog.var_names()) {
    slots.push_back(static_cast<std::uint32_t>(ints.size()));
    ints.push_back(name == "x" ? 8 : 0);
    boxed.push_back(Value(name == "x" ? 8 : 0));
  }
  std::int64_t r;
  EXPECT_FALSE(lowered->run(ints.data(), slots.data(), &r));  // poisoned
  EXPECT_THROW(prog.run(boxed.data(), slots.data()), EvalError);
}

TEST(IntProgram, OverflowingPowPoisonsWhereBoxedPromotesToReal) {
  const Program prog = compile(parse("x ** y"));
  auto lowered = IntProgram::lower(prog);
  ASSERT_TRUE(lowered.has_value());
  std::vector<std::uint32_t> slots{0, 1};
  if (prog.var_names()[0] == "y") slots = {1, 0};
  const std::int64_t ints[] = {10, 40};  // 10**40 overflows int64
  const Value boxed[] = {Value(10), Value(40)};
  std::int64_t r;
  EXPECT_FALSE(lowered->run(ints, slots.data(), &r));
  const Value v = prog.run(boxed, slots.data());
  EXPECT_TRUE(v.is_real());  // boxed escape: promotion to real
}

TEST(IntProgram, NegativeExponentPoisons) {
  const Program prog = compile(parse("2 ** x"));
  auto lowered = IntProgram::lower(prog);
  ASSERT_TRUE(lowered.has_value());
  const std::uint32_t slots[] = {0};
  const std::int64_t ints[] = {-1};
  std::int64_t r;
  EXPECT_FALSE(lowered->run(ints, slots, &r));
  const Value boxed[] = {Value(-1)};
  EXPECT_DOUBLE_EQ(prog.run(boxed, slots).as_real(), 0.5);
}

TEST(IntProgram, DenseTupleUsesBitsetAndSparseUsesBinarySearch) {
  const Program dense = compile(parse("x in (1, 2, 3, 5, 8, 13)"));
  auto dense_lowered = IntProgram::lower(dense);
  ASSERT_TRUE(dense_lowered.has_value());
  EXPECT_NE(dense_lowered->disassemble().find("InBitset"), std::string::npos);

  const Program sparse = compile(parse("x in (1, 1000000, 123456789)"));
  auto sparse_lowered = IntProgram::lower(sparse);
  ASSERT_TRUE(sparse_lowered.has_value());
  EXPECT_NE(sparse_lowered->disassemble().find("InSorted"), std::string::npos);

  for (std::int64_t probe : {1, 2, 4, 13, 999, 1000000, 123456789}) {
    const std::uint32_t slots[] = {0};
    const Value boxed[] = {Value(probe)};
    std::int64_t r;
    ASSERT_TRUE(dense_lowered->run(&probe, slots, &r));
    EXPECT_EQ(Value(r), dense.run(boxed, slots)) << probe;
    ASSERT_TRUE(sparse_lowered->run(&probe, slots, &r));
    EXPECT_EQ(Value(r), sparse.run(boxed, slots)) << probe;
  }
}

// The headline differential sweep: thousands of random integer-closed
// expressions, several assignments each; the three evaluators must agree.
TEST(IntFastPathDifferential, RandomExpressionsAgreeAcrossAllEvaluators) {
  util::Rng rng(20260727);
  std::size_t lowered_count = 0, poisoned = 0, evaluated = 0;

  for (int iter = 0; iter < 3000; ++iter) {
    const AstPtr ast = random_int_expr(rng, rng.uniform_int(1, 4));
    Program prog;
    try {
      prog = compile(ast);
    } catch (const CompileError&) {
      continue;  // e.g. `not x` via make_unary inside a chain; irrelevant here
    }
    // Constant folding can materialize real literals (e.g. 30 ** 38 promotes
    // on overflow), so a generated expression is not guaranteed int-closed.
    auto lowered = IntProgram::lower(prog);
    if (!lowered) {
      ASSERT_FALSE(int_closed(prog)) << ast->to_string();
      continue;
    }
    ++lowered_count;

    for (int a = 0; a < 8; ++a) {
      std::unordered_map<std::string, Value> env_map;
      std::vector<Value> boxed;
      std::vector<std::int64_t> ints;
      std::vector<std::uint32_t> slots;
      for (const auto& name : prog.var_names()) {
        // Small values plus the occasional large magnitude to hit overflow.
        const std::int64_t v = rng.uniform_int(0, 12) == 0
                                   ? rng.uniform_int(-3, 3) * 2000000000LL
                                   : rng.uniform_int(-9, 64);
        slots.push_back(static_cast<std::uint32_t>(ints.size()));
        ints.push_back(v);
        boxed.push_back(Value(v));
        env_map.emplace(name, Value(v));
      }
      for (const auto& name : variables(*ast)) {
        env_map.emplace(name, Value(0));  // vars folded out of the program
      }

      const EvalOutcome vm = run_boxed(prog, boxed, slots);
      const EvalOutcome tree = run_tree(*ast, env_map);

      // Boxed VM vs tree interpreter: same error/value behaviour (values
      // compare cross-kind, so bool(1) == int(1) == real(1.0)).
      ASSERT_EQ(vm.value.has_value(), tree.value.has_value())
          << ast->to_string();
      if (vm.value) {
        ASSERT_TRUE(values_agree(*vm.value, *tree.value))
            << ast->to_string() << " vm=" << vm.value->to_string()
            << " tree=" << tree.value->to_string();
      }

      std::int64_t fast = 0;
      if (lowered->run(ints.data(), slots.data(), &fast)) {
        // Fast path committed: the boxed path must have produced the same
        // (necessarily non-raising) value.
        ++evaluated;
        ASSERT_TRUE(vm.value.has_value()) << ast->to_string();
        ASSERT_EQ(Value(fast), *vm.value) << ast->to_string();
      } else {
        // Poisoned: an escape occurred somewhere (division by zero, overflow
        // promotion, negative exponent).  The boxed result can still end up
        // int — e.g. an overflowed real laundered through a comparison — so
        // the only contract is that consumers fall back to the boxed path,
        // which is what FunctionConstraint::satisfied_fast does.
        ++poisoned;
      }
    }
  }
  // The sweep must be exercising the machinery, not vacuously passing.
  EXPECT_GT(lowered_count, 1000u);
  EXPECT_GT(poisoned, 50u);
  EXPECT_GT(evaluated, 5000u);
}

// ---------------------------------------------------------------------------
// Constraint-level specialization
// ---------------------------------------------------------------------------

TEST(FunctionConstraintFastPath, SpecializesOnIntDomainsAndAgrees) {
  FunctionConstraint c(parse("32 <= x * y <= 1024"));
  c.bind({0, 1});
  csp::Domain dx = csp::Domain::powers(1, 512);
  csp::Domain dy = csp::Domain::powers(1, 512);
  ASSERT_TRUE(c.try_specialize({&dx, &dy}));
  EXPECT_TRUE(c.specialized());

  for (const Value& vx : dx.values()) {
    for (const Value& vy : dy.values()) {
      const Value boxed[] = {vx, vy};
      const std::int64_t ints[] = {vx.as_int(), vy.as_int()};
      EXPECT_EQ(c.satisfied(boxed), c.satisfied_fast(ints));
    }
  }
}

TEST(FunctionConstraintFastPath, RefusesNonIntDomains) {
  FunctionConstraint c(parse("x < y"));
  c.bind({0, 1});
  csp::Domain dx({Value(0.5), Value(1.5)});
  csp::Domain dy = csp::Domain::range(1, 4);
  EXPECT_FALSE(c.try_specialize({&dx, &dy}));
}

TEST(FunctionConstraintFastPath, PoisonFallbackMatchesBoxedInvalidation) {
  // y == 0 raises in the boxed path -> configuration invalid (false).
  FunctionConstraint c(parse("x % y == 0"));
  c.bind({0, 1});
  csp::Domain dx = csp::Domain::range(0, 8);
  csp::Domain dy = csp::Domain::range(0, 4);  // includes the poisonous 0
  ASSERT_TRUE(c.try_specialize({&dx, &dy}));
  for (std::int64_t x = 0; x <= 8; ++x) {
    for (std::int64_t y = 0; y <= 4; ++y) {
      const Value boxed[] = {Value(x), Value(y)};
      const std::int64_t ints[] = {x, y};
      EXPECT_EQ(c.satisfied(boxed), c.satisfied_fast(ints)) << x << "%" << y;
    }
  }
}

TEST(FunctionConstraintFastPath, Int64MinCornerDoesNotTrap) {
  // INT64_MIN with divisor -1 used to be hardware-trapping UB in the boxed
  // tier; the fast tier poisons and replays there, so the boxed semantics
  // must be well-defined: mod -> 0, floordiv -> 2^63 promoted to real.
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  for (const char* src : {"x % y == 0", "x // y > 0", "gcd(x, y) >= 1",
                          "-x > y", "abs(x) >= abs(y)"}) {
    FunctionConstraint c(parse(src));
    c.bind({0, 1});
    csp::Domain dx({Value(kMin), Value(4)});
    csp::Domain dy({Value(-1), Value(std::int64_t{2})});
    ASSERT_TRUE(c.try_specialize({&dx, &dy})) << src;
    for (const Value& vx : dx.values()) {
      for (const Value& vy : dy.values()) {
        const Value boxed[] = {vx, vy};
        const std::int64_t ints[] = {vx.as_int(), vy.as_int()};
        EXPECT_EQ(c.satisfied(boxed), c.satisfied_fast(ints))
            << src << " x=" << vx.to_string() << " y=" << vy.to_string();
      }
    }
  }
}

TEST(BuiltinFastPath, AllSpecializeOnIntDomainsAndAgree) {
  csp::Domain d1 = csp::Domain::range(1, 12);
  csp::Domain d2 = csp::Domain::powers(1, 16);
  const std::vector<const csp::Domain*> domains{&d1, &d2};

  std::vector<csp::ConstraintPtr> constraints;
  constraints.push_back(
      std::make_unique<csp::MaxProduct>(48, std::vector<std::string>{"a", "b"}));
  constraints.push_back(
      std::make_unique<csp::MinSum>(6, std::vector<std::string>{"a", "b"}));
  constraints.push_back(std::make_unique<csp::VarComparison>("a", csp::CmpOp::Le, "b"));
  constraints.push_back(std::make_unique<csp::Divisibility>("a", "b"));
  constraints.push_back(
      std::make_unique<csp::AllDifferent>(std::vector<std::string>{"a", "b"}));
  constraints.push_back(
      std::make_unique<csp::AllEqual>(std::vector<std::string>{"a", "b"}));
  constraints.push_back(std::make_unique<csp::InSet>(
      "a", std::vector<Value>{Value(2), Value(3), Value(5), Value(8)}));

  for (auto& c : constraints) {
    c->bind(c->scope().size() == 1 ? std::vector<std::uint32_t>{0}
                                   : std::vector<std::uint32_t>{0, 1});
    c->prepare(c->scope().size() == 1
                   ? std::vector<const csp::Domain*>{&d1}
                   : domains);
    ASSERT_TRUE(c->try_specialize(c->scope().size() == 1
                                      ? std::vector<const csp::Domain*>{&d1}
                                      : domains))
        << c->describe();
    for (const Value& va : d1.values()) {
      for (const Value& vb : d2.values()) {
        const Value boxed[] = {va, vb};
        const std::int64_t ints[] = {va.as_int(), vb.as_int()};
        EXPECT_EQ(c->satisfied(boxed), c->satisfied_fast(ints)) << c->describe();
        const unsigned char assigned[] = {1, 1};
        EXPECT_EQ(c->consistent(boxed, assigned), c->consistent_fast(ints, assigned))
            << c->describe();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Solver integration
// ---------------------------------------------------------------------------

namespace {

csp::Problem make_tuning_problem() {
  csp::Problem p;
  p.add_variable("bx", csp::Domain::powers(1, 128));
  p.add_variable("by", csp::Domain::powers(1, 128));
  p.add_variable("tile", csp::Domain::range(1, 8));
  p.add_variable("unroll", csp::Domain({Value(1), Value(2), Value(4)}));
  p.add_constraint(std::make_unique<FunctionConstraint>(
      parse("32 <= bx * by <= 1024")));
  p.add_constraint(std::make_unique<FunctionConstraint>(
      parse("bx % unroll == 0")));
  p.add_constraint(std::make_unique<csp::MaxProduct>(
      512, std::vector<std::string>{"bx", "tile"}));
  p.add_constraint(std::make_unique<FunctionConstraint>(
      parse("tile * unroll in (1, 2, 4, 8, 16, 32)")));
  return p;
}

}  // namespace

TEST(SolverFastPath, EngagesAutomaticallyOnAllIntProblems) {
  csp::Problem p = make_tuning_problem();
  const auto result = solver::OptimizedBacktracking().solve(p);
  EXPECT_GT(result.solutions.size(), 0u);
  EXPECT_GT(result.stats.fast_checks, 0u);
  // All-integer problem: every search-time check takes the fast tier.
  EXPECT_EQ(result.stats.fast_checks, result.stats.constraint_checks);
}

TEST(SolverFastPath, OnAndOffProduceByteIdenticalSolutionSets) {
  csp::Problem p_on = make_tuning_problem();
  csp::Problem p_off = make_tuning_problem();
  solver::OptimizedOptions off;
  off.int_fast_path = false;

  const auto on = solver::OptimizedBacktracking().solve(p_on);
  const auto boxed = solver::OptimizedBacktracking(off).solve(p_off);
  EXPECT_EQ(boxed.stats.fast_checks, 0u);
  ASSERT_EQ(on.solutions.size(), boxed.solutions.size());
  // Byte-identical, not merely set-equal: same rows in the same order.
  for (std::size_t v = 0; v < on.solutions.num_vars(); ++v) {
    EXPECT_EQ(on.solutions.column(v), boxed.solutions.column(v)) << "column " << v;
  }
  // Same pruning power: identical effort counters.
  EXPECT_EQ(on.stats.nodes, boxed.stats.nodes);
  EXPECT_EQ(on.stats.constraint_checks, boxed.stats.constraint_checks);
}

TEST(SolverFastPath, ParallelSolverMatchesAndCountsFastChecks) {
  csp::Problem p_seq = make_tuning_problem();
  csp::Problem p_par = make_tuning_problem();
  const auto seq = solver::OptimizedBacktracking().solve(p_seq);
  const auto par = solver::ParallelBacktracking(2).solve(p_par);
  EXPECT_TRUE(seq.solutions.same_solutions(par.solutions));
  EXPECT_GT(par.stats.fast_checks, 0u);
}

TEST(SolverFastPath, MixedTypeProblemsStayCorrect) {
  // A string-valued layout parameter forces its constraints onto the boxed
  // tier while the integer constraints keep the fast tier.
  const auto build = [] {
    csp::Problem p;
    p.add_variable("bx", csp::Domain::powers(1, 64));
    p.add_variable("by", csp::Domain::powers(1, 64));
    p.add_variable("layout", csp::Domain({Value("NHWC"), Value("NCHW")}));
    p.add_constraint(std::make_unique<FunctionConstraint>(
        parse("16 <= bx * by <= 256")));
    p.add_constraint(std::make_unique<FunctionConstraint>(
        parse("layout == 'NHWC' or bx <= 32")));
    return p;
  };
  csp::Problem p_on = build();
  csp::Problem p_off = build();
  solver::OptimizedOptions off;
  off.int_fast_path = false;

  const auto on = solver::OptimizedBacktracking().solve(p_on);
  const auto boxed = solver::OptimizedBacktracking(off).solve(p_off);
  EXPECT_GT(on.solutions.size(), 0u);
  EXPECT_GT(on.stats.fast_checks, 0u);
  EXPECT_LT(on.stats.fast_checks, on.stats.constraint_checks);
  ASSERT_EQ(on.solutions.size(), boxed.solutions.size());
  for (std::size_t v = 0; v < on.solutions.num_vars(); ++v) {
    EXPECT_EQ(on.solutions.column(v), boxed.solutions.column(v));
  }
}

// ---------------------------------------------------------------------------
// Block tier: IntProgramBlock VM, constraint block entry points, solver
// integration.  The contract under test (constraint.hpp): n <= kMaxBlockLanes,
// mask is AND-accumulated, dead lanes stay dead, values[var] is scratch, and
// the block poison set is a superset of the scalar one with non-poisoned
// lanes agreeing exactly.
// ---------------------------------------------------------------------------

TEST(IntProgramBlockVM, LaneForLaneAgreementWithScalarOnRandomExpressions) {
  util::Rng rng(20260808);
  std::size_t lowered_count = 0, lanes_checked = 0, scalar_poison_lanes = 0;

  for (int iter = 0; iter < 1500; ++iter) {
    const AstPtr ast = random_int_expr(rng, rng.uniform_int(1, 4));
    Program prog;
    try {
      prog = compile(ast);
    } catch (const CompileError&) {
      continue;
    }
    auto scalar = IntProgram::lower(prog);
    if (!scalar) continue;
    auto block = IntProgramBlock::lower(fold_constants(ast), prog.var_names());
    if (!block) continue;
    ++lowered_count;

    const std::size_t nvars = prog.var_names().size();
    std::vector<std::int64_t> values(std::max<std::size_t>(nvars, 1), 0);
    std::vector<std::uint32_t> slots(nvars);
    for (std::size_t s = 0; s < nvars; ++s) slots[s] = static_cast<std::uint32_t>(s);
    const auto draw = [&]() -> std::int64_t {
      return rng.uniform_int(0, 12) == 0 ? rng.uniform_int(-3, 3) * 2000000000LL
                                         : rng.uniform_int(-9, 64);
    };

    for (int rep = 0; rep < 4; ++rep) {
      for (auto& v : values) v = draw();
      const std::int32_t varying =
          nvars == 0 ? -1 : rng.uniform_int(0, static_cast<int>(nvars) - 1);
      // Ragged tails (n < kLanes) get the same scrutiny as full groups.
      const std::size_t n = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<int>(IntProgramBlock::kLanes)));
      std::int64_t candidates[IntProgramBlock::kLanes] = {0};
      for (std::size_t i = 0; i < n; ++i) candidates[i] = draw();

      unsigned char truth[IntProgramBlock::kLanes] = {0};
      unsigned char poison[IntProgramBlock::kLanes] = {0};
      block->run(values.data(), slots.data(), varying, candidates, n, truth,
                 poison);

      for (std::size_t i = 0; i < n; ++i) {
        ++lanes_checked;
        if (varying >= 0) values[static_cast<std::size_t>(varying)] = candidates[i];
        std::int64_t r = 0;
        if (!scalar->run(values.data(), slots.data(), &r)) {
          // A scalar-tier escape must never be missed by the block tier.
          EXPECT_NE(poison[i], 0) << ast->to_string() << " lane " << i;
          ++scalar_poison_lanes;
        } else if (!poison[i]) {
          // Both tiers committed: identical truth value.
          EXPECT_EQ(truth[i] != 0, r != 0) << ast->to_string() << " lane " << i;
        }
        // Block-poisoned while scalar committed is legal: eager And/Or/Select
        // evaluates branches short-circuiting would have skipped, and the
        // caller replays such lanes through the scalar oracle anyway.
      }
    }
  }
  // The sweep must exercise the machinery, not vacuously pass.
  EXPECT_GT(lowered_count, 400u);
  EXPECT_GT(lanes_checked, 10000u);
  EXPECT_GT(scalar_poison_lanes, 50u);
}

TEST(IntProgramBlockVM, AllLanesPoisonWhenBroadcastDivisorIsZero) {
  const AstPtr ast = parse("x % y == 0");
  const Program prog = compile(ast);
  auto block = IntProgramBlock::lower(fold_constants(ast), prog.var_names());
  ASSERT_TRUE(block.has_value());

  std::int32_t x_slot = -1;
  std::vector<std::uint32_t> slots;
  std::vector<std::int64_t> values;
  for (std::size_t s = 0; s < prog.var_names().size(); ++s) {
    slots.push_back(static_cast<std::uint32_t>(s));
    values.push_back(0);  // y broadcasts the poisonous divisor 0
    if (prog.var_names()[s] == "x") x_slot = static_cast<std::int32_t>(s);
  }
  ASSERT_GE(x_slot, 0);

  const std::int64_t candidates[] = {0, 1, 2, 3, 4, 5, 6, 7};
  unsigned char truth[IntProgramBlock::kLanes];
  unsigned char poison[IntProgramBlock::kLanes];
  block->run(values.data(), slots.data(), x_slot, candidates,
             IntProgramBlock::kLanes, truth, poison);
  for (std::size_t i = 0; i < IntProgramBlock::kLanes; ++i) {
    EXPECT_NE(poison[i], 0) << "lane " << i;
  }
}

TEST(IntProgramBlockVM, MixedPoisonBlockIsolatesTheEscapingLane) {
  const AstPtr ast = parse("24 // x >= 0");
  const Program prog = compile(ast);
  auto scalar = IntProgram::lower(prog);
  ASSERT_TRUE(scalar.has_value());
  auto block = IntProgramBlock::lower(fold_constants(ast), prog.var_names());
  ASSERT_TRUE(block.has_value());

  const std::uint32_t slots[] = {0};
  std::int64_t candidates[] = {-2, -1, 0, 1, 2, 3, 4, 6};  // lane 2 divides by 0
  unsigned char truth[IntProgramBlock::kLanes];
  unsigned char poison[IntProgramBlock::kLanes];
  std::int64_t dummy = 0;
  block->run(&dummy, slots, 0, candidates, IntProgramBlock::kLanes, truth,
             poison);
  for (std::size_t i = 0; i < IntProgramBlock::kLanes; ++i) {
    if (i == 2) {
      EXPECT_NE(poison[i], 0);
      continue;
    }
    EXPECT_EQ(poison[i], 0) << "lane " << i;
    std::int64_t r = 0;
    ASSERT_TRUE(scalar->run(&candidates[i], slots, &r));
    EXPECT_EQ(truth[i] != 0, r != 0) << "lane " << i;
  }
}

namespace {

/// Minimal fast-path constraint with no block overrides: pins down the
/// base-class scalar-sweep defaults for satisfied_block/consistent_block.
class CongruenceConstraint : public csp::Constraint {
 public:
  CongruenceConstraint() : Constraint({"a", "b"}) {}
  bool satisfied(const Value* values) const override {
    return values[indices()[0]].as_int() % 3 != values[indices()[1]].as_int() % 3;
  }
  bool try_specialize(const std::vector<const csp::Domain*>&) override {
    return true;
  }
  bool satisfied_fast(const std::int64_t* values) const override {
    return values[indices()[0]] % 3 != values[indices()[1]] % 3;
  }
  std::string describe() const override { return "a % 3 != b % 3"; }
};

}  // namespace

TEST(BuiltinBlockTier, DefaultBlockEntryPointsSweepTheScalarTier) {
  CongruenceConstraint c;
  c.bind({0, 1});
  std::int64_t values[2] = {0, 5};
  const std::int64_t candidates[] = {1, 2, 3, 4, 5};
  // Lanes 0 and 3 start dead and must stay dead; live lanes AND the verdict.
  unsigned char mask[] = {0, 1, 1, 0, 1};
  c.satisfied_block(values, 0, candidates, 5, mask);
  for (std::size_t i = 0; i < 5; ++i) {
    const unsigned char expect =
        (i == 0 || i == 3) ? 0 : (candidates[i] % 3 != 5 % 3);
    EXPECT_EQ(mask[i], expect) << "lane " << i;
  }
  // consistent_block with only `var` assigned: the default full-check-once-
  // assigned semantics of consistent_fast prune nothing.
  unsigned char mask2[] = {1, 1, 1, 1, 1};
  const unsigned char assigned[] = {1, 0};
  c.consistent_block(values, assigned, 0, candidates, 5, mask2);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(mask2[i], 1) << "lane " << i;
}

TEST(BuiltinBlockTier, AllBuiltinsMatchScalarSweepsOverRaggedChunks) {
  csp::Domain d1 = csp::Domain::range(1, 12);
  csp::Domain d2 = csp::Domain::powers(1, 16);
  const std::vector<const csp::Domain*> domains{&d1, &d2};

  std::vector<csp::ConstraintPtr> constraints;
  constraints.push_back(
      std::make_unique<csp::MaxProduct>(48, std::vector<std::string>{"a", "b"}));
  constraints.push_back(
      std::make_unique<csp::MinSum>(6, std::vector<std::string>{"a", "b"}));
  constraints.push_back(
      std::make_unique<csp::VarComparison>("a", csp::CmpOp::Le, "b"));
  constraints.push_back(std::make_unique<csp::Divisibility>("a", "b"));
  constraints.push_back(
      std::make_unique<csp::AllDifferent>(std::vector<std::string>{"a", "b"}));
  constraints.push_back(
      std::make_unique<csp::AllEqual>(std::vector<std::string>{"a", "b"}));
  constraints.push_back(std::make_unique<csp::InSet>(
      "a", std::vector<Value>{Value(2), Value(3), Value(5), Value(8)}));

  std::vector<std::int64_t> cands;
  for (const Value& v : d1.values()) cands.push_back(v.as_int());

  for (auto& c : constraints) {
    const bool unary = c->scope().size() == 1;
    c->bind(unary ? std::vector<std::uint32_t>{0}
                  : std::vector<std::uint32_t>{0, 1});
    const auto scope_domains =
        unary ? std::vector<const csp::Domain*>{&d1} : domains;
    c->prepare(scope_domains);
    ASSERT_TRUE(c->try_specialize(scope_domains)) << c->describe();

    for (const Value& vb : d2.values()) {
      // Chunk size 5 over 12 candidates: two full-ish groups + ragged tail.
      for (std::size_t start = 0; start < cands.size(); start += 5) {
        const std::size_t n = std::min<std::size_t>(5, cands.size() - start);
        std::int64_t values[2] = {0, vb.as_int()};
        unsigned char mask[csp::Constraint::kMaxBlockLanes];
        unsigned char expect[csp::Constraint::kMaxBlockLanes];

        // satisfied_block vs a scalar satisfied_fast sweep (some dead lanes).
        for (std::size_t i = 0; i < n; ++i) {
          mask[i] = i % 3 != 0;
          values[0] = cands[start + i];
          expect[i] = mask[i] && c->satisfied_fast(values);
        }
        c->satisfied_block(values, 0, cands.data() + start, n, mask);
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(mask[i] != 0, expect[i] != 0)
              << c->describe() << " b=" << vb.to_string() << " lane " << i;
        }

        // consistent_block vs a scalar consistent_fast sweep, both with the
        // partner assigned and with it still open.
        for (const bool partner_assigned : {true, false}) {
          const unsigned char assigned[2] = {
              1, static_cast<unsigned char>(partner_assigned ? 1 : 0)};
          for (std::size_t i = 0; i < n; ++i) {
            mask[i] = 1;
            values[0] = cands[start + i];
            expect[i] = c->consistent_fast(values, assigned);
          }
          c->consistent_block(values, assigned, 0, cands.data() + start, n,
                              mask);
          for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(mask[i] != 0, expect[i] != 0)
                << c->describe() << " b=" << vb.to_string()
                << " assigned=" << partner_assigned << " lane " << i;
          }
        }
      }
    }
  }
}

TEST(FunctionConstraintBlockTier, SpecializesAndAgreesThroughPoisonFallback) {
  FunctionConstraint c(parse("x % y == 0"));
  c.bind({0, 1});
  csp::Domain dx = csp::Domain::range(0, 8);
  csp::Domain dy = csp::Domain::range(0, 4);  // includes the poisonous 0
  ASSERT_TRUE(c.try_specialize({&dx, &dy}));
  EXPECT_TRUE(c.block_specialized());

  std::vector<std::int64_t> xs;
  for (const Value& v : dx.values()) xs.push_back(v.as_int());
  for (std::int64_t y = 0; y <= 4; ++y) {
    for (std::size_t start = 0; start < xs.size(); start += 5) {
      const std::size_t n = std::min<std::size_t>(5, xs.size() - start);
      std::int64_t values[2] = {0, y};
      unsigned char mask[csp::Constraint::kMaxBlockLanes];
      unsigned char expect[csp::Constraint::kMaxBlockLanes];
      for (std::size_t i = 0; i < n; ++i) {
        mask[i] = 1;
        values[0] = xs[start + i];
        expect[i] = c.satisfied_fast(values) ? 1 : 0;
      }
      c.satisfied_block(values, 0, xs.data() + start, n, mask);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(mask[i] != 0, expect[i] != 0)
            << "y=" << y << " lane " << i << " x=" << xs[start + i];
      }
    }
  }
}

TEST(SolverBlockTier, OnAndOffProduceIdenticalRowsAndEffortCounters) {
  csp::Problem p_on = make_tuning_problem();
  csp::Problem p_off = make_tuning_problem();
  solver::OptimizedOptions off;
  off.block_eval = false;

  const auto on = solver::OptimizedBacktracking().solve(p_on);
  const auto scalar = solver::OptimizedBacktracking(off).solve(p_off);
  EXPECT_GT(on.stats.block_checks, 0u);
  EXPECT_GT(on.stats.block_lanes, on.stats.block_checks);  // multi-lane groups
  EXPECT_EQ(scalar.stats.block_checks, 0u);
  EXPECT_EQ(scalar.stats.block_lanes, 0u);

  ASSERT_EQ(on.solutions.size(), scalar.solutions.size());
  for (std::size_t v = 0; v < on.solutions.num_vars(); ++v) {
    EXPECT_EQ(on.solutions.column(v), scalar.solutions.column(v))
        << "column " << v;
  }
  // The block tier is an execution strategy, never a search change: the
  // per-candidate effort accounting is identical (lanes count as individual
  // fast checks).
  EXPECT_EQ(on.stats.nodes, scalar.stats.nodes);
  EXPECT_EQ(on.stats.constraint_checks, scalar.stats.constraint_checks);
  EXPECT_EQ(on.stats.fast_checks, scalar.stats.fast_checks);
  EXPECT_EQ(on.stats.prunes, scalar.stats.prunes);
}

TEST(SolverBlockTier, EnvToggleForcesScalarPath) {
  setenv("TUNESPACE_BLOCK_EVAL", "0", 1);
  csp::Problem p = make_tuning_problem();
  const auto result = solver::OptimizedBacktracking().solve(p);
  unsetenv("TUNESPACE_BLOCK_EVAL");
  EXPECT_GT(result.solutions.size(), 0u);
  EXPECT_EQ(result.stats.block_checks, 0u);
  EXPECT_EQ(result.stats.block_lanes, 0u);
}

TEST(SolverBlockTier, ParallelEngineAccumulatesBlockCounters) {
  csp::Problem p_seq = make_tuning_problem();
  csp::Problem p_par = make_tuning_problem();
  const auto seq = solver::OptimizedBacktracking().solve(p_seq);
  const auto par = solver::ParallelBacktracking(2).solve(p_par);
  EXPECT_TRUE(seq.solutions.same_solutions(par.solutions));
  EXPECT_GT(par.stats.block_checks, 0u);
  EXPECT_GE(par.stats.block_lanes, par.stats.block_checks);
}

TEST(SolverBlockTier, RandomProblemsBlockOnOffEquivalence) {
  util::Rng rng(4242);
  for (int iter = 0; iter < 25; ++iter) {
    std::vector<AstPtr> exprs;
    const int num_constraints = rng.uniform_int(1, 3);
    for (int c = 0; c < num_constraints; ++c) {
      exprs.push_back(random_int_expr(rng, rng.uniform_int(1, 3)));
    }
    const auto build = [&] {
      csp::Problem p;
      p.add_variable("x", csp::Domain::range(0, 9));
      p.add_variable("y", csp::Domain::range(1, 8));
      p.add_variable("z", csp::Domain::powers(1, 32));
      for (const auto& e : exprs) {
        if (variables(*e).empty()) continue;
        p.add_constraint(std::make_unique<FunctionConstraint>(e));
      }
      return p;
    };
    csp::Problem p_on = build();
    csp::Problem p_off = build();
    solver::OptimizedOptions off;
    off.block_eval = false;
    const auto on = solver::OptimizedBacktracking().solve(p_on);
    const auto scalar = solver::OptimizedBacktracking(off).solve(p_off);
    ASSERT_EQ(on.solutions.size(), scalar.solutions.size()) << iter;
    for (std::size_t v = 0; v < on.solutions.num_vars(); ++v) {
      ASSERT_EQ(on.solutions.column(v), scalar.solutions.column(v)) << iter;
    }
    ASSERT_EQ(on.stats.nodes, scalar.stats.nodes) << iter;
    ASSERT_EQ(on.stats.constraint_checks, scalar.stats.constraint_checks)
        << iter;
    ASSERT_EQ(on.stats.fast_checks, scalar.stats.fast_checks) << iter;
  }
}

TEST(SolverFastPath, RandomProblemsOnOffEquivalence) {
  util::Rng rng(77);
  for (int iter = 0; iter < 40; ++iter) {
    // Random 3-variable integer problems with random function constraints.
    std::vector<AstPtr> exprs;
    const int num_constraints = rng.uniform_int(1, 3);
    for (int c = 0; c < num_constraints; ++c) {
      exprs.push_back(random_int_expr(rng, rng.uniform_int(1, 3)));
    }
    const auto build = [&] {
      csp::Problem p;
      p.add_variable("x", csp::Domain::range(0, 9));
      p.add_variable("y", csp::Domain::range(1, 8));
      p.add_variable("z", csp::Domain::powers(1, 32));
      for (const auto& e : exprs) {
        if (variables(*e).empty()) continue;  // constant exprs fold away
        p.add_constraint(std::make_unique<FunctionConstraint>(e));
      }
      return p;
    };
    csp::Problem p_on = build();
    csp::Problem p_off = build();
    solver::OptimizedOptions off;
    off.int_fast_path = false;
    const auto on = solver::OptimizedBacktracking().solve(p_on);
    const auto boxed = solver::OptimizedBacktracking(off).solve(p_off);
    ASSERT_EQ(on.solutions.size(), boxed.solutions.size()) << iter;
    for (std::size_t v = 0; v < on.solutions.num_vars(); ++v) {
      ASSERT_EQ(on.solutions.column(v), boxed.solutions.column(v)) << iter;
    }
  }
}
