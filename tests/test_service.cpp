// Tests for the TuningService front end: the kernel catalog, admission
// control (global, per-tenant, budget and evaluation caps), the ask/tell
// entry points and their error codes, graceful drain, and warm restart
// from a persisted state directory.
#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "tunespace/tuner/service.hpp"

using namespace tunespace;
using tuner::TuningService;

namespace {

tuner::OpenSessionRequest quick_request(const std::string& kernel,
                                        std::uint64_t seed = 1,
                                        double budget = 1.0) {
  tuner::OpenSessionRequest request;
  request.kernel = kernel;
  request.seed = seed;
  request.budget_seconds = budget;
  // Fix the construction charge so runs are bit-reproducible across
  // services and restarts (measured latency is machine noise).
  request.fixed_construction_seconds = 0.25;
  return request;
}

/// Drive a session to completion answering with the catalog model; returns
/// the closed run summary.
tuner::RunSummary drive(TuningService& service, std::uint64_t id,
                        const tuner::ServiceKernel& kernel,
                        const std::vector<std::string>& names) {
  while (true) {
    const auto ask = service.suggest({id});
    if (ask.finished) break;
    csp::Config config;
    config.reserve(ask.config.size());
    for (const auto& entry : ask.config) config.push_back(entry.value);
    service.report({id, kernel.model->gflops(names, config), -1.0});
  }
  return service.close({id}).run;
}

ErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ServiceError& e) {
    return e.code();
  }
  return ErrorCode::kOk;
}

/// A scratch directory unique to the current test.
std::filesystem::path scratch_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("tunespace_service_") + info->test_suite_name() + "_" +
              info->name());
  std::filesystem::remove_all(dir);
  return dir;
}

}  // namespace

// --- Catalog ----------------------------------------------------------------

TEST(ServiceCatalog, CarriesTheTable2KernelsUnderWireNames) {
  ASSERT_NE(tuner::find_service_kernel("gemm"), nullptr);
  ASSERT_NE(tuner::find_service_kernel("hotspot"), nullptr);
  ASSERT_NE(tuner::find_service_kernel("dedispersion"), nullptr);
  EXPECT_EQ(tuner::find_service_kernel("no-such-kernel"), nullptr);
  EXPECT_EQ(tuner::service_catalog().size(), 8u);
  // Dedicated surfaces for the kernels the paper tunes end to end.
  EXPECT_EQ(tuner::find_service_kernel("gemm")->model->name(), "gemm");
  EXPECT_EQ(tuner::find_service_kernel("hotspot")->model->name(), "hotspot");
}

// --- Open / validation ------------------------------------------------------

TEST(Service, OpenRejectsUnknownKernelOptimizerAndMethod) {
  TuningService service;
  auto request = quick_request("no-such-kernel");
  EXPECT_EQ(code_of([&] { service.open(request); }), ErrorCode::kInvalidArgument);

  request = quick_request("hotspot");
  request.optimizer = "no-such-optimizer";
  EXPECT_EQ(code_of([&] { service.open(request); }), ErrorCode::kInvalidArgument);

  request = quick_request("hotspot");
  request.method = "no-such-method";
  EXPECT_EQ(code_of([&] { service.open(request); }), ErrorCode::kInvalidArgument);

  request = quick_request("hotspot");
  request.budget_seconds = -1.0;
  EXPECT_EQ(code_of([&] { service.open(request); }), ErrorCode::kInvalidArgument);
  EXPECT_EQ(service.stats().total_opened, 0u);
}

TEST(Service, OpenAppliesRestrictionsAndRejectsUnknownParams) {
  TuningService service;
  auto request = quick_request("hotspot");
  request.restrictions = {{"sh_power", {csp::Value(1)}}};
  const auto opened = service.open(request);
  const auto unrestricted_rows =
      tuner::find_service_kernel("hotspot") != nullptr
          ? service.open(quick_request("hotspot")).info.space_rows
          : 0;
  EXPECT_GT(opened.info.space_rows, 0u);
  EXPECT_LT(opened.info.space_rows, unrestricted_rows);

  auto bad = quick_request("hotspot");
  bad.restrictions = {{"no_such_param", {csp::Value(1)}}};
  EXPECT_EQ(code_of([&] { service.open(bad); }), ErrorCode::kInvalidArgument);
}

TEST(Service, SessionsOverTheSameKernelShareOneSpace) {
  TuningService service;
  const auto first = service.open(quick_request("hotspot", 1));
  const auto second = service.open(quick_request("hotspot", 2));
  EXPECT_FALSE(first.info.shared_space);
  EXPECT_TRUE(second.info.shared_space);
  EXPECT_EQ(service.stats().spaces_built, 1u);
  EXPECT_EQ(service.stats().spaces_shared, 1u);
}

// --- Admission control ------------------------------------------------------

TEST(Service, GlobalLiveSessionLimitIsEnforced) {
  tuner::TuningServiceOptions options;
  options.limits.max_live_sessions = 2;
  TuningService service(options);
  const auto a = service.open(quick_request("hotspot", 1));
  service.open(quick_request("hotspot", 2));
  EXPECT_EQ(code_of([&] { service.open(quick_request("hotspot", 3)); }),
            ErrorCode::kAdmissionLimit);
  EXPECT_EQ(service.stats().total_rejected, 1u);
  // Closing frees the slot.
  service.close({a.session_id});
  service.open(quick_request("hotspot", 3));
}

TEST(Service, PerTenantLimitIsIndependentAcrossTenants) {
  tuner::TuningServiceOptions options;
  options.limits.max_sessions_per_tenant = 1;
  TuningService service(options);
  auto request = quick_request("hotspot", 1);
  request.tenant = "alice";
  service.open(request);
  EXPECT_EQ(code_of([&] { service.open(request); }), ErrorCode::kAdmissionLimit);
  request.tenant = "bob";  // a different bucket
  service.open(request);
}

TEST(Service, BudgetCapRejectsOversizedSessions) {
  tuner::TuningServiceOptions options;
  options.limits.max_budget_seconds = 10.0;
  TuningService service(options);
  EXPECT_EQ(code_of([&] { service.open(quick_request("hotspot", 1, 60.0)); }),
            ErrorCode::kAdmissionLimit);
  service.open(quick_request("hotspot", 1, 5.0));
}

TEST(Service, EvaluationCapFinishesTheSessionEarly) {
  tuner::TuningServiceOptions options;
  options.limits.max_evaluations_per_session = 3;
  TuningService service(options);
  const auto& kernel = *tuner::find_service_kernel("hotspot");
  const auto opened = service.open(quick_request("hotspot", 1, 500.0));
  const auto run = drive(service, opened.session_id, kernel,
                         opened.info.param_names);
  EXPECT_EQ(run.evaluations, 3u);
}

// --- Entry-point error codes ------------------------------------------------

TEST(Service, UnknownSessionIdsAreRejectedEverywhere) {
  TuningService service;
  EXPECT_EQ(code_of([&] { service.suggest({42}); }), ErrorCode::kUnknownSession);
  EXPECT_EQ(code_of([&] { service.report({42, 1.0}); }),
            ErrorCode::kUnknownSession);
  EXPECT_EQ(code_of([&] { service.best({42}); }), ErrorCode::kUnknownSession);
  EXPECT_EQ(code_of([&] { service.info(42); }), ErrorCode::kUnknownSession);
  EXPECT_EQ(code_of([&] { service.close({42}); }), ErrorCode::kUnknownSession);
}

TEST(Service, AskTellOrderingViolationsSurfaceAsWrongState) {
  TuningService service;
  const auto opened = service.open(quick_request("hotspot"));
  EXPECT_EQ(code_of([&] { service.report({opened.session_id, 1.0}); }),
            ErrorCode::kWrongState);
  const auto ask = service.suggest({opened.session_id});
  ASSERT_FALSE(ask.finished);
  EXPECT_EQ(code_of([&] { service.suggest({opened.session_id}); }),
            ErrorCode::kWrongState);
  EXPECT_TRUE(service.info(opened.session_id).awaiting_report);
}

TEST(Service, BestReportsTheImprovingConfiguration) {
  TuningService service;
  const auto& kernel = *tuner::find_service_kernel("hotspot");
  const auto opened = service.open(quick_request("hotspot"));
  EXPECT_TRUE(service.best({opened.session_id}).config.empty());
  const auto ask = service.suggest({opened.session_id});
  ASSERT_FALSE(ask.finished);
  csp::Config config;
  for (const auto& entry : ask.config) config.push_back(entry.value);
  const double gflops = kernel.model->gflops(opened.info.param_names, config);
  const auto reported = service.report({opened.session_id, gflops, -1.0});
  EXPECT_TRUE(reported.improved);
  const auto best = service.best({opened.session_id});
  EXPECT_DOUBLE_EQ(best.best_gflops, gflops);
  EXPECT_EQ(best.config, ask.config);
}

// --- Drain ------------------------------------------------------------------

TEST(Service, DrainRejectsNewSessionsAndCompletesWhenSessionsClose) {
  TuningService service;
  const auto opened = service.open(quick_request("hotspot"));
  service.begin_drain();
  EXPECT_TRUE(service.draining());
  EXPECT_FALSE(service.drained());
  EXPECT_EQ(code_of([&] { service.open(quick_request("hotspot", 2)); }),
            ErrorCode::kDraining);
  EXPECT_FALSE(service.wait_drained(0.05));  // a session is still live
  service.close({opened.session_id});
  EXPECT_TRUE(service.wait_drained(5.0));
  EXPECT_TRUE(service.drained());
}

// --- Warm restart -----------------------------------------------------------

TEST(Service, WarmRestartReplaysFromThePersistedEvalCache) {
  const auto dir = scratch_dir();
  const auto& kernel = *tuner::find_service_kernel("hotspot");

  tuner::RunSummary cold_run;
  {
    tuner::TuningServiceOptions options;
    options.state_dir = dir.string();
    TuningService service(options);
    const auto opened = service.open(quick_request("hotspot", 7, 2.0));
    cold_run = drive(service, opened.session_id, kernel,
                     opened.info.param_names);
    EXPECT_GT(cold_run.evaluations, 0u);
    service.save_state();
  }
  ASSERT_TRUE(std::filesystem::exists(dir / "eval_cache.tsv"));

  {
    tuner::TuningServiceOptions options;
    options.state_dir = dir.string();
    TuningService service(options);
    EXPECT_GT(service.stats().cache_entries, 0u);  // loaded at startup
    const auto opened = service.open(quick_request("hotspot", 7, 2.0));
    // The same session replays entirely from the persisted cache: the
    // driver sees no suggestions, and the result is bit-identical.
    EXPECT_TRUE(service.suggest({opened.session_id}).finished);
    const auto info = service.info(opened.session_id);
    EXPECT_EQ(info.model_evaluations, 0u);
    EXPECT_EQ(info.shared_cache_hits, cold_run.evaluations);
    const auto warm_run = service.close({opened.session_id}).run;
    EXPECT_EQ(warm_run, cold_run);
  }
  std::filesystem::remove_all(dir);
}

TEST(Service, EvalCacheSavesAsTsec2AndLoadsLegacyTsec1) {
  const auto dir = scratch_dir();
  const auto& kernel = *tuner::find_service_kernel("hotspot");

  tuner::RunSummary cold_run;
  {
    tuner::TuningServiceOptions options;
    options.state_dir = dir.string();
    TuningService service(options);
    const auto opened = service.open(quick_request("hotspot", 9, 2.0));
    cold_run = drive(service, opened.session_id, kernel,
                     opened.info.param_names);
    EXPECT_GT(cold_run.evaluations, 0u);
    service.save_state();
  }

  // The persisted file is TSEC 2: a version header and four hex columns
  // (fingerprint, row, gflops bits, watts bits).
  const auto path = dir / "eval_cache.tsv";
  ASSERT_TRUE(std::filesystem::exists(path));
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "TSEC 2");
  std::vector<std::array<std::string, 4>> rows;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::array<std::string, 4> row;
    ASSERT_TRUE(fields >> row[0] >> row[1] >> row[2] >> row[3]) << line;
    rows.push_back(row);
  }
  in.close();
  ASSERT_FALSE(rows.empty());

  // Rewrite the file as its TSEC 1 ancestor (three columns, scalar gflops;
  // the scalar session's watts column is all zeros, so this is lossless).
  {
    std::ofstream out(path, std::ios::trunc);
    out << "TSEC 1\n";
    for (const auto& row : rows) {
      EXPECT_EQ(row[3], "0000000000000000");  // scalar sessions mask watts
      out << row[0] << ' ' << row[1] << ' ' << row[2] << '\n';
    }
  }

  // A restarted service loads the legacy file (widening each row to a
  // gflops-only vector) and replays the session bit-identically from it.
  {
    tuner::TuningServiceOptions options;
    options.state_dir = dir.string();
    TuningService service(options);
    EXPECT_EQ(service.stats().cache_entries, rows.size());
    const auto opened = service.open(quick_request("hotspot", 9, 2.0));
    EXPECT_TRUE(service.suggest({opened.session_id}).finished);
    const auto warm_run = service.close({opened.session_id}).run;
    EXPECT_EQ(warm_run, cold_run);
  }
  std::filesystem::remove_all(dir);
}

TEST(Service, CloseCancelsALiveSessionAndReturnsThePartialRun) {
  TuningService service;
  const auto& kernel = *tuner::find_service_kernel("hotspot");
  const auto opened = service.open(quick_request("hotspot", 1, 500.0));
  const auto ask = service.suggest({opened.session_id});
  ASSERT_FALSE(ask.finished);
  csp::Config config;
  for (const auto& entry : ask.config) config.push_back(entry.value);
  service.report(
      {opened.session_id, kernel.model->gflops(opened.info.param_names, config)});
  const auto closed = service.close({opened.session_id});
  EXPECT_EQ(closed.run.evaluations, 1u);
  EXPECT_EQ(code_of([&] { service.info(opened.session_id); }),
            ErrorCode::kUnknownSession);
}
