// Concurrent multi-session tuning recipe: one SessionManager serving many
// overlapping tuning sessions, plus a portfolio race.
//
//   $ ./concurrent_sessions
//
// Eight sessions tune the Hotspot space at once (different seeds and
// optimizers, as if eight users submitted jobs): the manager resolves the
// space once, every session reuses it, and the lock-striped shared
// evaluation cache lets overlapping sessions skip re-measuring
// configurations another session already benchmarked — while each session's
// result stays bit-identical to what an isolated run_tuning call would
// produce.  The portfolio then races all five optimizers (seed-split from
// one root seed) over the same space with a shared best-so-far and a stall
// rule, which is the practical answer to "which optimizer should I use for
// this kernel?" — run them all, deterministically, and keep the winner.
#include <iostream>
#include <memory>

#include "tunespace/spaces/realworld.hpp"
#include "tunespace/tuner/session.hpp"

using namespace tunespace;

int main() {
  const auto rw = spaces::hotspot();
  const auto model = std::make_shared<tuner::HotspotModel>();

  // 1. Eight overlapping sessions, one shared space + evaluation cache.
  std::vector<tuner::SessionRequest> requests;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    tuner::SessionRequest request;
    request.spec = rw.spec;
    request.model = model;
    request.make_optimizer = [seed]() -> std::unique_ptr<tuner::Optimizer> {
      if (seed % 2) return std::make_unique<tuner::RandomSearch>();
      return std::make_unique<tuner::GeneticAlgorithm>();
    };
    request.options.budget_seconds = 120.0;
    request.options.seed = seed;
    // Pin the construction charge: this (not sharing) is what makes a
    // managed session bit-identical to an isolated run_tuning call —
    // measured construction latency is machine noise.
    request.options.fixed_construction_seconds = 5.0;
    requests.push_back(std::move(request));
  }

  tuner::SessionManager manager;
  const auto results = manager.run_all(std::move(requests));
  std::cout << rw.name << ": " << results.size() << " sessions, "
            << manager.spaces_built() << " space built, "
            << manager.spaces_shared() << " reused; shared cache served "
            << manager.eval_cache().hits() << " of "
            << manager.eval_cache().hits() + manager.eval_cache().misses()
            << " measurement requests\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::cout << "  session " << i + 1 << ": best "
              << results[i].run.best_gflops << " GFLOP/s after "
              << results[i].run.evaluations << " evals ("
              << (results[i].stats.shared_space ? "shared" : "built")
              << " space, " << results[i].stats.shared_cache_hits
              << " cache hits)\n";
  }

  // 2. Portfolio race: all five optimizers, one root seed, shared
  //    best-so-far, early stop after 60 stalled virtual seconds.
  const searchspace::SearchSpace space(rw.spec);
  tuner::PortfolioOptions options;
  options.base.budget_seconds = 240.0;
  options.base.seed = 2025;
  options.stall_seconds = 60.0;
  const auto race = tuner::run_portfolio(space, *model,
                                         tuner::default_portfolio(), options);
  std::cout << "portfolio (root seed 2025"
            << (race.early_stopped ? ", stalled early" : "") << "):\n";
  for (const auto& member : race.members) {
    std::cout << "  " << member.optimizer_name << ": best "
              << member.run.best_gflops << " after " << member.run.evaluations
              << " evals\n";
  }
  std::cout << "  winner: " << race.members[race.winner].optimizer_name
            << " with " << race.merged.best_gflops << " GFLOP/s (portfolio "
            << "total " << race.merged.evaluations << " evals)\n";
  return 0;
}
