// Streaming and parallel construction: the lazy SolutionIterator for
// early-exit workflows, and the multi-threaded ParallelBacktracking solver
// for the heaviest enumerations, plus CSV export of a resolved space.
#include <iostream>
#include <sstream>

#include "tunespace/searchspace/io.hpp"
#include "tunespace/solver/parallel_backtracking.hpp"
#include "tunespace/solver/solution_iterator.hpp"
#include "tunespace/spaces/realworld.hpp"
#include "tunespace/util/timer.hpp"

using namespace tunespace;

int main() {
  // --- 1. Stream solutions lazily (no full materialization) ----------------
  auto rw = spaces::hotspot();
  auto problem = tuner::build_problem(rw.spec, tuner::PipelineOptions::optimized());
  solver::SolutionIterator it(problem);
  std::cout << "first 3 valid Hotspot configurations (streamed):\n";
  for (int i = 0; i < 3; ++i) {
    auto config = it.next_config();
    if (!config) break;
    std::cout << "  " << problem.config_to_string(*config) << "\n";
  }
  std::cout << "(only " << it.count() << " solutions enumerated so far)\n\n";

  // --- 2. Parallel construction of the full space --------------------------
  // The work-stealing engine splits the search tree at an assignment-prefix
  // depth (auto-chosen here); solutions come back in the exact sequential
  // enumeration order regardless of thread count or steal policy.
  for (std::size_t threads : {1u, 4u}) {
    auto p = tuner::build_problem(rw.spec, tuner::PipelineOptions::optimized());
    solver::SolverOptions options;
    options.threads = threads;
    options.steal = solver::StealPolicy::kRandom;  // or kSequential
    util::WallTimer timer;
    auto result = solver::ParallelBacktracking(options).solve(p);
    std::cout << threads << " thread(s): " << result.solutions.size()
              << " solutions in " << timer.seconds() * 1e3 << " ms ("
              << result.stats.parallel_tasks << " tasks across "
              << result.stats.parallel_workers << " workers)\n";
  }

  // --- 3. Export a (small) resolved space to CSV ---------------------------
  auto dedisp = spaces::dedispersion();
  searchspace::SearchSpace space(dedisp.spec);
  std::ostringstream csv;
  searchspace::write_csv(space, csv);
  std::cout << "\nDedispersion space exported: " << space.size()
            << " rows, " << csv.str().size() / 1024 << " KiB of CSV; first lines:\n";
  std::istringstream lines(csv.str());
  std::string line;
  for (int i = 0; i < 3 && std::getline(lines, line); ++i) {
    std::cout << "  " << line << "\n";
  }
  return 0;
}
