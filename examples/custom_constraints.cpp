// Custom constraints tour: what the §4.2 parsing pipeline does to different
// constraint shapes, and how to drop to the CSP layer directly when needed.
#include <iostream>

#include "tunespace/csp/builtin_constraints.hpp"
#include "tunespace/expr/analysis.hpp"
#include "tunespace/expr/parser.hpp"
#include "tunespace/expr/recognizer.hpp"
#include "tunespace/solver/optimized_backtracking.hpp"
#include "tunespace/searchspace/searchspace.hpp"

using namespace tunespace;

int main() {
  // --- 1. What the pipeline produces for various constraint styles --------
  std::cout << "constraint -> recognized form\n";
  for (const char* text : {
           "32 <= block_size_x * block_size_y <= 1024",   // chained products
           "tile_x % unroll == 0",                         // divisibility
           "layout in ('NHWC', 'NCHW')",                   // membership
           "2 * wx + wy <= 48",                            // weighted sum
           "wx <= wy",                                     // comparison
           "wx * wx <= 64",                                // falls back (x*x)
           "sh == 0 or block_size_x >= 16",                // disjunction
       }) {
    std::cout << "  " << text << "\n";
    for (const auto& conjunct : expr::decompose(expr::parse(text))) {
      std::cout << "    -> " << expr::recognize(conjunct)->describe() << "\n";
    }
  }

  // --- 2. Building a problem at the CSP layer directly --------------------
  // (python-constraint style, Listing 3 of the paper)
  csp::Problem problem;
  problem.add_variable("block_size_x", csp::Domain::powers(1, 1024));
  problem.add_variable("block_size_y", csp::Domain::powers(1, 64));
  problem.add_constraint(std::make_unique<csp::MinProduct>(
      32, std::vector<std::string>{"block_size_x", "block_size_y"}));
  problem.add_constraint(std::make_unique<csp::MaxProduct>(
      1024, std::vector<std::string>{"block_size_x", "block_size_y"}));

  solver::OptimizedBacktracking solver;
  auto result = solver.solve(problem);
  std::cout << "\nCSP-layer problem (Listing 3): " << result.solutions.size()
            << " solutions, " << result.stats.nodes << " nodes visited, "
            << result.stats.prunes << " prunes\n";

  // --- 3. Mixed-type parameters -------------------------------------------
  tuner::TuningProblem spec("mixed");
  spec.add_param("layout", std::vector<csp::Value>{csp::Value("NHWC"),
                                                   csp::Value("NCHW")})
      .add_param("vector_width", {1, 2, 4, 8})
      .add_param("alpha", std::vector<csp::Value>{csp::Value(0.5), csp::Value(1.0)});
  spec.add_constraint("layout == 'NHWC' or vector_width <= 2");
  spec.add_constraint("alpha * vector_width <= 4");
  searchspace::SearchSpace space(spec);
  std::cout << "\nmixed-type space has " << space.size() << " of "
            << space.cartesian_size() << " configs valid:\n";
  for (std::size_t r = 0; r < space.size(); ++r) {
    std::cout << "  " << space.problem().config_to_string(space.config(r)) << "\n";
  }
  return 0;
}
