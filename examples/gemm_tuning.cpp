// GEMM auto-tuning end to end: resolve the CLBlast-style GEMM space, then
// compare optimization algorithms (random sampling, genetic algorithm,
// simulated annealing, hill climbing) on the simulated kernel under the
// same virtual time budget.
#include <iostream>

#include "tunespace/spaces/realworld.hpp"
#include "tunespace/tuner/runner.hpp"
#include "tunespace/tuner/session.hpp"
#include "tunespace/util/table.hpp"

using namespace tunespace;

int main() {
  const auto rw = spaces::gemm();
  std::cout << "GEMM search space: " << rw.spec.cartesian_size()
            << " Cartesian configurations, " << rw.spec.constraints().size()
            << " constraints\n\n";

  tuner::GemmModel model;
  auto methods = tuner::construction_methods(false);
  const auto& optimized = methods[0];

  tuner::TuningOptions options;
  options.budget_seconds = 300.0;  // 5 simulated minutes
  options.seed = 7;

  util::Table table({"optimizer", "best GFLOP/s", "evaluations",
                     "time of best find"});
  auto report = [&](tuner::Optimizer& optimizer) {
    auto run = tuner::run_session(
        tuner::make_session_request(rw.spec, optimized, model, optimizer, options));
    const double best_time =
        run.trajectory.empty() ? 0.0 : run.trajectory.back().time_seconds;
    table.add_row({optimizer.name(), util::fmt_double(run.best_gflops, 5),
                   std::to_string(run.evaluations),
                   util::fmt_seconds(best_time)});
  };

  tuner::RandomSearch random_search;
  tuner::GeneticAlgorithm genetic;
  tuner::SimulatedAnnealing annealing;
  tuner::HillClimber climber;
  report(random_search);
  report(genetic);
  report(annealing);
  report(climber);

  std::cout << "optimizer comparison under a " << options.budget_seconds
            << "s virtual budget:\n";
  table.print(std::cout);
  return 0;
}
