// Hotspot construction-method comparison: demonstrates why search-space
// construction speed matters for the whole tuning session (the paper's §5.4
// argument) on the real 22.2M-Cartesian Hotspot space.
#include <iostream>

#include "tunespace/spaces/realworld.hpp"
#include "tunespace/tuner/runner.hpp"
#include "tunespace/tuner/session.hpp"
#include "tunespace/util/table.hpp"

using namespace tunespace;

int main() {
  const auto rw = spaces::hotspot();
  std::cout << "Hotspot search space: " << rw.spec.cartesian_size()
            << " Cartesian configurations\n\n";

  tuner::HotspotModel model;
  tuner::TuningOptions options;
  options.budget_seconds = 600.0;
  options.seed = 5;
  // Charge construction at 100x so the relative construction share of the
  // budget matches the paper's Python/A100 regime (see EXPERIMENTS.md).
  options.construction_time_scale = 100.0;

  util::Table table({"construction method", "construction (virtual)",
                     "evaluations", "best GFLOP/s"});
  // Brute force sweeps the full 22.2M-config Cartesian product here —
  // included deliberately, that construction latency is the point.
  for (const auto& method : tuner::construction_methods(false)) {
    tuner::RandomSearch optimizer;
    auto run = tuner::run_session(
          tuner::make_session_request(rw.spec, method, model, optimizer, options));
    table.add_row({method.name,
                   util::fmt_seconds(run.construction_seconds *
                                     options.construction_time_scale),
                   std::to_string(run.evaluations),
                   util::fmt_double(run.best_gflops, 5)});
    std::cout << "finished " << method.name << "\n";
  }
  std::cout << "\nsame optimizer + budget, different construction methods:\n";
  table.print(std::cout);
  std::cout << "\nSlow construction burns tuning budget before the first kernel "
               "ever runs - the paper's Fig. 6 in miniature.\n";
  return 0;
}
