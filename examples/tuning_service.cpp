// Tuning-as-a-service recipe: an embedded TuningService driven through its
// ask/tell surface, then the same session replayed over loopback TCP.
//
//   $ ./tuning_service
//
// The service front end is the multi-tenant face of the concurrent runtime:
// open() admits a session over a catalog kernel (shared space, shared
// evaluation cache, admission limits), suggest() hands out the next
// configuration to measure, report() feeds the measurement back, close()
// returns the final TuningRun summary.  Because the ask/tell stepper is
// bit-identical to the closed run_tuning loop, a remote tuner — here a
// ServiceClient talking length-prefixed JSON to a ServiceServer on an
// ephemeral loopback port — produces exactly the run an in-process call
// would.  The embedded and the wire sessions below print the same best.
#include <iostream>

#include "tunespace/tuner/server.hpp"
#include "tunespace/tuner/service.hpp"
#include "tunespace/tuner/service_client.hpp"

using namespace tunespace;

namespace {

tuner::OpenSessionRequest gemm_request() {
  tuner::OpenSessionRequest request;
  request.tenant = "example";
  request.kernel = "gemm";  // from the service catalog (see service.hpp)
  request.optimizer = "simulated-annealing";
  request.seed = 5;
  request.budget_seconds = 60.0;
  // Pin the construction charge so the run is reproducible run-to-run.
  request.fixed_construction_seconds = 0.5;
  return request;
}

/// Answer every suggestion with the kernel's performance model — the role a
/// real deployment fills by launching the configuration on the GPU.
template <typename Api>
tuner::RunSummary drive(Api& api, std::uint64_t session_id,
                        const std::vector<std::string>& names) {
  const auto* kernel = tuner::find_service_kernel("gemm");
  while (true) {
    const auto ask = api.suggest({session_id});
    if (ask.finished) break;
    csp::Config config;
    for (const auto& entry : ask.config) config.push_back(entry.value);
    api.report({session_id, kernel->model->gflops(names, config), -1.0});
  }
  return api.close({session_id}).run;
}

/// ServiceClient exposes per-id convenience calls; adapt to the request
/// structs so drive() works on both transports.
struct WireApi {
  tuner::ServiceClient& client;
  tuner::SuggestResponse suggest(const tuner::SuggestRequest& r) {
    return client.suggest(r.session_id);
  }
  tuner::ReportResponse report(const tuner::ReportRequest& r) {
    return client.report(r);
  }
  tuner::CloseSessionResponse close(const tuner::CloseSessionRequest& r) {
    return client.close_session(r.session_id);
  }
};

}  // namespace

int main() {
  // 1. Embedded: the service as a library, zero serialization.
  tuner::TuningService service;
  const auto opened = service.open(gemm_request());
  std::cout << "embedded session " << opened.session_id << " over "
            << opened.info.kernel << " (" << opened.info.space_rows
            << " rows)\n";
  const auto embedded = drive(service, opened.session_id,
                              opened.info.param_names);
  std::cout << "  best " << embedded.best_gflops << " GFLOP/s in "
            << embedded.evaluations << " evaluations\n";

  // 2. Remote: the same session over loopback TCP.  A fresh service, so the
  // shared cache cannot leak results between the two runs.
  tuner::TuningService remote_service;
  tuner::ServiceServerOptions server_options;
  server_options.port = 0;  // ephemeral
  tuner::ServiceServer server(remote_service, server_options);
  server.start();

  tuner::ServiceClientOptions client_options;
  client_options.port = server.port();
  tuner::ServiceClient client(client_options);
  const auto remote_opened = client.open(gemm_request());
  std::cout << "wire session " << remote_opened.session_id << " on port "
            << server.port() << "\n";
  WireApi api{client};
  const auto remote = drive(api, remote_opened.session_id,
                            remote_opened.info.param_names);
  std::cout << "  best " << remote.best_gflops << " GFLOP/s in "
            << remote.evaluations << " evaluations\n";
  server.stop();

  std::cout << (embedded == remote ? "transports agree bit-for-bit\n"
                                   : "DIVERGED\n");
  return embedded == remote ? 0 : 1;
}
