// Persistence recipe: resolve once, tune many.
//
//   $ ./persistence [cache_dir]
//
// The first run pays the full construction cost (solve + index build) and
// populates the snapshot cache; every later run — a new tuner invocation, a
// bench job, a CI step — reloads the fully-resolved space through the
// zero-copy snapshot path in a fraction of the time, with byte-identical
// enumeration order and query results.  Delete the cache directory (or bump
// any domain / constraint, which changes the spec fingerprint) to force a
// fresh construction.
#include <iostream>

#include "tunespace/searchspace/sampling.hpp"
#include "tunespace/searchspace/searchspace.hpp"
#include "tunespace/spaces/realworld.hpp"

using namespace tunespace;

int main(int argc, char** argv) {
  const std::string cache_dir = argc > 1 ? argv[1] : "tunespace-cache";
  const auto rw = spaces::hotspot();

  // 1. Resolve-or-reload.  The cache key is a fingerprint of the domains,
  //    the constraint expressions and the construction method, so a stale
  //    snapshot can never be served for an edited spec.
  searchspace::SearchSpace space =
      searchspace::SearchSpace::load_or_build(rw.spec, cache_dir);
  std::cout << rw.name << ": " << space.size() << " valid configs out of "
            << space.cartesian_size() << " ("
            << space.construction_seconds() * 1e3 << " ms; run again to see "
            << "the snapshot reload time)\n";

  // 2. "Tune many": every run draws its own balanced sample and queries the
  //    same resolved space — no re-solving, identical row ids across runs.
  util::Rng rng(2025);
  const auto sample = searchspace::latin_hypercube_sample(space, 8, rng);
  std::cout << "LHS sample rows:";
  for (std::size_t row : sample) std::cout << ' ' << row;
  std::cout << '\n';
  std::cout << "first sampled config: "
            << space.problem().config_to_string(space.config(sample.front()))
            << '\n';
  return 0;
}
