// Quickstart: define a tunable kernel's parameters and constraints, resolve
// the search space, and inspect it.
//
//   $ ./quickstart
//
// This is the paper's §2 running example: the Hotspot thread-block
// dimensions with the 32 <= x*y <= 1024 constraint.
#include <iostream>

#include "tunespace/searchspace/neighbors.hpp"
#include "tunespace/searchspace/sampling.hpp"
#include "tunespace/searchspace/searchspace.hpp"

using namespace tunespace;

int main() {
  // 1. Declare tunable parameters and constraints (Python-subset strings).
  tuner::TuningProblem spec("hotspot-blocks");
  spec.add_param("block_size_x", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
      .add_param("block_size_y", {1, 2, 4, 8, 16, 32})
      .add_param("sh_power", {0, 1});
  spec.add_constraint("32 <= block_size_x * block_size_y <= 1024");
  spec.add_constraint("sh_power == 0 or block_size_x >= 16");

  // 2. Resolve the space (optimized CSP pipeline under the hood).
  searchspace::SearchSpace space(spec);
  std::cout << "Cartesian size:  " << space.cartesian_size() << "\n"
            << "valid configs:   " << space.size() << "\n"
            << "sparsity:        " << space.sparsity() << "\n"
            << "construction:    " << space.construction_seconds() * 1e3
            << " ms\n\n";

  // 3. Inspect configurations and true bounds.
  std::cout << "first valid config: "
            << space.problem().config_to_string(space.config(0)) << "\n";
  std::cout << "true bounds of block_size_x (value indices present in valid "
               "configs): ";
  for (std::uint32_t vi : space.present_values(0)) {
    std::cout << space.problem().domain(0)[vi].to_string() << " ";
  }
  std::cout << "\n\n";

  // 4. Query neighbours (what a genetic algorithm's mutation step uses).
  const auto neighbors = searchspace::neighbors_of(space, 0);
  std::cout << "config 0 has " << neighbors.size() << " valid Hamming-1 neighbours\n";

  // 5. Draw a Latin Hypercube sample for balanced initial tuning.
  util::Rng rng(42);
  const auto sample = searchspace::latin_hypercube_sample(space, 8, rng);
  std::cout << "LHS sample of " << sample.size() << " configs:\n";
  for (std::size_t row : sample) {
    std::cout << "  " << space.problem().config_to_string(space.config(row)) << "\n";
  }
  return 0;
}
