// Multi-objective tuning end to end: tune Hotspot for throughput AND power
// with two strategies — weighted scalarization (one knob: the watts weight)
// and NSGA-II non-dominated selection — then apply a power cap to each
// Pareto front to read off "the fastest configuration under N watts".
//
// Also demonstrates (and verifies, exiting non-zero on failure) the
// compatibility contract of the measurement redesign: a default-objective
// session driven through the vector-first stack reproduces the legacy
// scalar results bit for bit — same trajectory, best_score identical to
// best_gflops, watts masked out.
#include <iostream>

#include "tunespace/spaces/realworld.hpp"
#include "tunespace/tuner/session.hpp"
#include "tunespace/util/table.hpp"

using namespace tunespace;

namespace {

/// The fastest front point whose power draw stays under `watts_cap`
/// (nullptr when the whole front is above the cap).
const tuner::ParetoPoint* fastest_under_cap(
    const std::vector<tuner::ParetoPoint>& front, double watts_cap) {
  const tuner::ParetoPoint* pick = nullptr;
  for (const auto& point : front) {
    if (point.measurement.watts > watts_cap) continue;
    if (pick == nullptr || point.measurement.gflops > pick->measurement.gflops) {
      pick = &point;
    }
  }
  return pick;
}

}  // namespace

int main() {
  const auto rw = spaces::hotspot();
  tuner::HotspotModel model;
  const tuner::Method method = tuner::optimized_method();

  tuner::TuningOptions options;
  options.budget_seconds = 120.0;
  options.seed = 11;
  options.fixed_construction_seconds = 5.0;

  // --- Compatibility: the scalar path is bit-identical through the
  // vector-first stack.  A default ObjectiveSpec IS the legacy contract, so
  // every derived scalar coincides with the measured gflops exactly, and a
  // replay reproduces the run bit for bit.
  tuner::RandomSearch scalar_opt;
  const auto scalar = tuner::run_session(
      tuner::make_session_request(rw.spec, method, model, scalar_opt, options));
  tuner::RandomSearch replay_opt;
  const auto replay = tuner::run_session(
      tuner::make_session_request(rw.spec, method, model, replay_opt, options));
  bool compatible = replay == scalar && scalar.objectives.is_single() &&
                    scalar.best_score == scalar.best_gflops &&  // bit-exact
                    scalar.best.watts == 0.0;  // unmeasured => masked
  for (const auto& point : scalar.trajectory) {
    compatible = compatible && point.measurement.gflops == point.best_gflops;
  }
  if (!compatible) {
    std::cerr << "FAIL: the scalar path diverged from the legacy contract\n";
    return 1;
  }
  std::cout << "scalar compatibility: " << scalar.evaluations
            << " evaluations, best " << util::fmt_double(scalar.best_gflops, 2)
            << " GFLOP/s, replay bit-identical\n\n";

  // --- Two-objective tuning: maximize gflops, minimize watts.
  options.objectives = tuner::ObjectiveSpec::perf_and_power(1.0, 1.0);

  tuner::RandomSearch weighted_opt;  // weighted scalarization drives any
                                     // single-objective optimizer unchanged
  const auto weighted = tuner::run_session(
      tuner::make_session_request(rw.spec, method, model, weighted_opt, options));

  auto nsga2_opt = tuner::make_optimizer("nsga2");
  const auto nsga2 = tuner::run_session(
      tuner::make_session_request(rw.spec, method, model, *nsga2_opt, options));

  util::Table table({"strategy", "best score", "incumbent GFLOP/s",
                     "incumbent W", "GFLOP/s/W", "front size"});
  for (const auto& entry :
       {std::make_pair("weighted scalarization", &weighted),
        std::make_pair("nsga2", &nsga2)}) {
    const auto& run = *entry.second;
    table.add_row(
        {entry.first, util::fmt_double(run.best_score, 3),
         util::fmt_double(run.best.gflops, 2),
         util::fmt_double(run.best.watts, 1),
         util::fmt_double(run.best.watts > 0 ? run.best.gflops / run.best.watts
                                             : 0.0,
                          3),
         std::to_string(run.pareto().size())});
  }
  std::cout << "two-objective tuning (maximize GFLOP/s, minimize W):\n";
  table.print(std::cout);

  // --- A power cap is a query against the front, not a new tuning run:
  // pick the fastest non-dominated configuration under the cap.
  const double cap_watts = 150.0;
  std::cout << "\nfastest configuration under a " << cap_watts << " W cap:\n";
  for (const auto& entry :
       {std::make_pair("weighted scalarization", &weighted),
        std::make_pair("nsga2", &nsga2)}) {
    const auto front = entry.second->pareto();
    if (const auto* pick = fastest_under_cap(front, cap_watts)) {
      std::cout << "  " << entry.first << ": row " << pick->parent_row << ", "
                << util::fmt_double(pick->measurement.gflops, 2) << " GFLOP/s at "
                << util::fmt_double(pick->measurement.watts, 1) << " W\n";
    } else {
      std::cout << "  " << entry.first << ": no front point under the cap\n";
    }
  }
  return 0;
}
